"""Indexed queries over a pattern journal (DESIGN.md §10).

A :class:`JournalIndex` is built once over a journal's sealed records and
then answers the continuous-query surface without rescanning every record:

* **super-pattern match** — patterns that *contain* a given itemset
  (posting-list intersection over the query items);
* **sub-pattern match** — patterns *contained in* a given itemset
  (posting-list union, then subset check);
* **support history** — one (slide, support) point per journalled slide
  for an exact itemset, the "support over time" curve;
* **top-k at a slide** — the k highest-support patterns of one slide;
* **provenance** — :meth:`first_frequent` / :meth:`last_frequent`, the
  slides at which a pattern entered / was last seen in the frequent set
  (the "when did this become frequent" question of query-answer
  causality).

The index is immutable once built — the serving front end shares one
instance across reader threads without locking.  Rebuild (or
:meth:`extend`) it when the journal gains records.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import HistoryError
from repro.history.journal import PatternJournal, SlideRecord

#: One query hit: (slide id, sorted item tuple, support).
Match = Tuple[int, Tuple[str, ...], int]


def _warn_deprecated(old: str, replacement: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use the query algebra (repro.history.algebra) "
        f"instead: {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


def _normalise_items(items: Iterable[str]) -> Tuple[str, ...]:
    ordered = tuple(sorted(set(items)))
    if not ordered:
        raise HistoryError("a pattern query needs at least one item")
    return ordered


class JournalIndex:
    """Item-posting index over the sealed records of a pattern journal."""

    def __init__(self, records: Iterable[SlideRecord]) -> None:
        #: slide id -> {pattern items -> support}, insertion = slide order.
        self._slides: Dict[int, Dict[Tuple[str, ...], int]] = {}
        #: item -> slide id -> pattern item-tuples containing the item.
        self._postings: Dict[str, Dict[int, List[Tuple[str, ...]]]] = {}
        self._order: List[int] = []
        self.extend(records)

    @classmethod
    def from_journal(cls, journal: PatternJournal) -> "JournalIndex":
        """Build an index over every record currently in ``journal``."""
        return cls(journal.records())

    def extend(self, records: Iterable[SlideRecord]) -> None:
        """Index additional records (slide ids must keep ascending)."""
        for record in records:
            if self._order and record.slide_id <= self._order[-1]:
                raise HistoryError(
                    f"slide {record.slide_id} breaks the index's slide order; "
                    f"already indexed up to slide {self._order[-1]}"
                )
            patterns: Dict[Tuple[str, ...], int] = {}
            for items, support in record.patterns:
                patterns[items] = support
                for item in items:
                    self._postings.setdefault(item, {}).setdefault(
                        record.slide_id, []
                    ).append(items)
            self._slides[record.slide_id] = patterns
            self._order.append(record.slide_id)

    def extended(self, records: Iterable[SlideRecord]) -> "JournalIndex":
        """A *new* index equal to this one plus ``records``.

        The snapshot-swap discipline for the service layer: untouched
        structure is shared with this index (top-level maps are copied,
        the per-item posting map of every item the suffix touches is
        copied, everything else is carried by reference), so this index
        keeps answering exactly as before while the caller atomically
        swaps the returned index in.  :meth:`extend` never mutates an
        already-indexed slide's inner structure, which is what makes the
        sharing safe.
        """
        suffix = list(records)
        clone = JournalIndex.__new__(JournalIndex)
        clone._slides = dict(self._slides)
        clone._postings = dict(self._postings)
        clone._order = list(self._order)
        for record in suffix:
            for items, _support in record.patterns:
                for item in items:
                    original = self._postings.get(item)
                    if original is not None and clone._postings[item] is original:
                        clone._postings[item] = dict(original)
        clone.extend(suffix)
        return clone

    # ------------------------------------------------------------------ #
    # shape accessors
    # ------------------------------------------------------------------ #
    def slide_ids(self) -> List[int]:
        """All indexed slide ids, ascending."""
        return list(self._order)

    @property
    def last_slide_id(self) -> Optional[int]:
        """The newest indexed slide id, or ``None`` for an empty index."""
        return self._order[-1] if self._order else None

    def patterns_at(self, slide_id: int) -> Dict[Tuple[str, ...], int]:
        """The full pattern → support map of one slide."""
        try:
            return dict(self._slides[slide_id])
        except KeyError:
            raise HistoryError(f"slide {slide_id} is not in the journal") from None

    def items(self) -> List[str]:
        """Every item that ever appeared in a journalled pattern, sorted."""
        return sorted(self._postings)

    def __len__(self) -> int:
        return len(self._order)

    # ------------------------------------------------------------------ #
    # posting accessors (the algebra compiler's raw material)
    # ------------------------------------------------------------------ #
    def has_slide(self, slide_id: int) -> bool:
        """Is ``slide_id`` an indexed slide?"""
        return slide_id in self._slides

    def posting_total(self, item: str) -> int:
        """Total posting length of ``item`` across every slide.

        This is the planner's selectivity estimate: it is already known
        at index-build time, so ordering intersections smallest-first
        costs nothing extra.
        """
        posting = self._postings.get(item)
        if not posting:
            return 0
        return sum(len(entries) for entries in posting.values())

    def posting(self, item: str, slide_id: int) -> Sequence[Tuple[str, ...]]:
        """The patterns containing ``item`` at one slide (read-only view)."""
        return self._postings.get(item, {}).get(slide_id, ())

    def row_count(self, slide_id: int) -> int:
        """Number of journalled pattern rows at one slide (0 if unknown)."""
        return len(self._slides.get(slide_id, ()))

    def iter_patterns_at(self, slide_id: int) -> Iterator[Tuple[Tuple[str, ...], int]]:
        """Iterate the (items, support) rows of one slide (full-scan path)."""
        return iter(self._slides.get(slide_id, {}).items())

    def support_at(self, slide_id: int, items: Iterable[str]) -> Optional[int]:
        """Support of an exact itemset at one slide, or None when absent."""
        slide = self._slides.get(slide_id)
        if slide is None:
            return None
        key = items if isinstance(items, tuple) else tuple(items)
        if key in slide:  # fast path: canonical (sorted) tuples, the hot loop
            return slide[key]
        return slide.get(tuple(sorted(key)))

    # ------------------------------------------------------------------ #
    # pattern-match queries
    # ------------------------------------------------------------------ #
    def _query_slides(self, slide_id: Optional[int]) -> List[int]:
        if slide_id is None:
            return list(self._order)
        if slide_id not in self._slides:
            raise HistoryError(f"slide {slide_id} is not in the journal")
        return [slide_id]

    def _canned_match(
        self, items: Iterable[str], slide_id: Optional[int], mode: str
    ) -> List[Match]:
        """Run one legacy containment query as a compiled algebra plan."""
        from repro.history import algebra

        query = _normalise_items(items)
        self._query_slides(slide_id)  # preserve the unknown-slide error
        where: "algebra.Predicate"
        if mode == "super":
            where = algebra.contains(*query)
        else:
            where = algebra.contained_in(*query)
        if slide_id is not None:
            where = algebra.and_(where, algebra.slides(slide_id, slide_id))
        return algebra.evaluate(algebra.select(where), self).matches

    def super_patterns(
        self, items: Iterable[str], slide_id: Optional[int] = None
    ) -> List[Match]:
        """Patterns that contain every query item (optionally at one slide).

        .. deprecated:: use the algebra instead —
           ``evaluate(select(contains(*items)), index)``; this shim runs
           exactly that compiled plan.
        """
        _warn_deprecated(
            "JournalIndex.super_patterns", "evaluate(select(contains(*items)), index)"
        )
        return self._canned_match(items, slide_id, "super")

    def sub_patterns(
        self, items: Iterable[str], slide_id: Optional[int] = None
    ) -> List[Match]:
        """Patterns contained in the query itemset (optionally at one slide).

        .. deprecated:: use the algebra instead —
           ``evaluate(select(contained_in(*items)), index)``; this shim
           runs exactly that compiled plan.
        """
        _warn_deprecated(
            "JournalIndex.sub_patterns",
            "evaluate(select(contained_in(*items)), index)",
        )
        return self._canned_match(items, slide_id, "sub")

    # ------------------------------------------------------------------ #
    # history and provenance
    # ------------------------------------------------------------------ #
    def support_history(self, items: Iterable[str]) -> List[Tuple[int, int]]:
        """The (slide, support) curve of one exact itemset over every slide.

        Slides where the itemset was not frequent contribute support 0, so
        the curve always has one point per journalled slide — trend
        detection never has to guess whether a gap means "absent" or
        "unknown".

        .. deprecated:: use the algebra instead —
           ``evaluate(history(*items), index).curve``; this shim runs
           exactly that plan.
        """
        from repro.history import algebra

        _warn_deprecated(
            "JournalIndex.support_history", "evaluate(history(*items), index).curve"
        )
        query = _normalise_items(items)
        return algebra.evaluate(algebra.history(*query), self).curve

    def first_frequent(self, items: Iterable[str]) -> Optional[int]:
        """The first slide at which the exact itemset was frequent."""
        query = _normalise_items(items)
        # Only slides in the first item's posting can hold the pattern.
        posting = self._postings.get(query[0], {})
        for slide in self._order:
            if slide in posting and query in self._slides[slide]:
                return slide
        return None

    def last_frequent(self, items: Iterable[str]) -> Optional[int]:
        """The last slide at which the exact itemset was frequent."""
        query = _normalise_items(items)
        for slide in reversed(self._order):
            if query in self._slides[slide]:
                return slide
        return None

    # ------------------------------------------------------------------ #
    # ranking and stats
    # ------------------------------------------------------------------ #
    def top_k(self, k: int, slide_id: Optional[int] = None) -> List[Match]:
        """The ``k`` highest-support patterns of one slide (default: newest).

        .. deprecated:: use the algebra instead —
           ``evaluate(top_k(k, where=slides(s, s)), index)``; this shim
           runs exactly that plan.
        """
        from repro.history import algebra

        _warn_deprecated(
            "JournalIndex.top_k", "evaluate(top_k(k, where=slides(s, s)), index)"
        )
        if k < 1:
            raise HistoryError(f"k must be at least 1, got {k}")
        if slide_id is None:
            if not self._order:
                return []
            slide_id = self._order[-1]
        elif slide_id not in self._slides:
            raise HistoryError(f"slide {slide_id} is not in the journal")
        expression = algebra.top_k(k, where=algebra.slides(slide_id, slide_id))
        return algebra.evaluate(expression, self).matches

    def stats(self) -> Dict[str, object]:
        """Shape summary of the indexed journal (the ``/stats`` payload)."""
        pattern_total = sum(len(patterns) for patterns in self._slides.values())
        distinct: set = set()
        for patterns in self._slides.values():
            distinct.update(patterns)
        return {
            "slides": len(self._order),
            "first_slide": self._order[0] if self._order else None,
            "last_slide": self._order[-1] if self._order else None,
            "pattern_rows": pattern_total,
            "distinct_patterns": len(distinct),
            "items": len(self._postings),
        }

    def __repr__(self) -> str:
        return (
            f"JournalIndex(slides={len(self._order)}, "
            f"items={len(self._postings)})"
        )


# ---------------------------------------------------------------------- #
# brute-force reference implementations
# ---------------------------------------------------------------------- #
def brute_force_super_patterns(
    records: Sequence[SlideRecord], items: Iterable[str], slide_id: Optional[int] = None
) -> List[Match]:
    """Reference scan for :meth:`JournalIndex.super_patterns` (tests/bench)."""
    wanted = frozenset(_normalise_items(items))
    matches: List[Match] = []
    for record in records:
        if slide_id is not None and record.slide_id != slide_id:
            continue
        for pattern_items, support in record.patterns:
            if wanted.issubset(pattern_items):
                matches.append((record.slide_id, pattern_items, support))
    return matches


def brute_force_sub_patterns(
    records: Sequence[SlideRecord], items: Iterable[str], slide_id: Optional[int] = None
) -> List[Match]:
    """Reference scan for :meth:`JournalIndex.sub_patterns` (tests/bench)."""
    allowed = frozenset(_normalise_items(items))
    matches: List[Match] = []
    for record in records:
        if slide_id is not None and record.slide_id != slide_id:
            continue
        for pattern_items, support in record.patterns:
            if allowed.issuperset(pattern_items):
                matches.append((record.slide_id, pattern_items, support))
    matches.sort(key=lambda match: (match[0], len(match[1]), match[1]))
    return matches


def brute_force_support_history(
    records: Sequence[SlideRecord], items: Iterable[str]
) -> List[Tuple[int, int]]:
    """Reference scan for :meth:`JournalIndex.support_history` (tests/bench)."""
    query = _normalise_items(items)
    history: List[Tuple[int, int]] = []
    for record in records:
        support = record.support_of(query)
        history.append((record.slide_id, support if support is not None else 0))
    return history
