"""Tests for top-k frequent connected subgraph mining."""

import pytest

from repro.datasets.paper_example import PAPER_CONNECTED_FREQUENT
from repro.exceptions import MiningError
from repro.extensions.topk import mine_top_k_connected


class TestTopK:
    def test_invalid_parameters(self, paper_window_matrix, paper_registry):
        with pytest.raises(MiningError):
            mine_top_k_connected(paper_window_matrix, paper_registry, k=0)
        with pytest.raises(MiningError):
            mine_top_k_connected(paper_window_matrix, paper_registry, k=3, min_size=0)
        with pytest.raises(MiningError):
            mine_top_k_connected(
                paper_window_matrix, paper_registry, k=3, algorithm="vertical"
            )

    def test_top_1_is_the_most_frequent_edge(self, paper_window_matrix, paper_registry):
        top = mine_top_k_connected(paper_window_matrix, paper_registry, k=1)
        assert len(top) == 1
        items, support = top[0]
        assert support == 5
        assert items in (frozenset({"a"}), frozenset({"c"}))

    def test_top_k_is_sorted_by_support(self, paper_window_matrix, paper_registry):
        top = mine_top_k_connected(paper_window_matrix, paper_registry, k=6)
        supports = [support for _items, support in top]
        assert supports == sorted(supports, reverse=True)
        assert len(top) == 6

    def test_results_are_true_connected_frequent_patterns(
        self, paper_window_matrix, paper_registry
    ):
        top = mine_top_k_connected(paper_window_matrix, paper_registry, k=10)
        for items, support in top:
            # Each reported support matches the ground truth of the example
            # whenever the pattern is one of the 15 connected frequent ones.
            if items in PAPER_CONNECTED_FREQUENT:
                assert PAPER_CONNECTED_FREQUENT[items] == support

    def test_min_size_filter(self, paper_window_matrix, paper_registry):
        top = mine_top_k_connected(paper_window_matrix, paper_registry, k=3, min_size=2)
        assert all(len(items) >= 2 for items, _support in top)
        # The most frequent connected pair is {a,c} with support 4.
        assert top[0] == (frozenset({"a", "c"}), 4)

    def test_k_larger_than_available_patterns(self, paper_window_matrix, paper_registry):
        top = mine_top_k_connected(
            paper_window_matrix, paper_registry, k=500, min_size=4
        )
        # Only {a,c,d,f} has 4 edges in the window.
        assert len(top) < 500
        assert (frozenset({"a", "c", "d", "f"}), 2) in top

    def test_threshold_choice_keeps_all_ties(self, paper_window_matrix, paper_registry):
        # Asking for k=2 must not silently drop patterns tied with the k-th.
        top = mine_top_k_connected(paper_window_matrix, paper_registry, k=2)
        assert len(top) == 2
        assert top[0][1] >= top[1][1]
