"""Tests for the time-fading / landmark stream-model extensions."""

import pytest

from repro.core.algorithms import get_algorithm
from repro.exceptions import MiningError
from repro.extensions.fading import (
    LandmarkCounter,
    TimeFadingVerticalMiner,
    batch_decay_weights,
    weighted_support,
)
from repro.storage.bitvector import BitVector
from repro.storage.dsmatrix import DSMatrix
from repro.stream.batch import Batch


class TestBatchDecayWeights:
    def test_newest_batch_has_weight_one(self):
        weights = batch_decay_weights(3, 0.5)
        assert weights == [0.25, 0.5, 1.0]

    def test_decay_one_gives_uniform_weights(self):
        assert batch_decay_weights(4, 1.0) == [1.0, 1.0, 1.0, 1.0]

    def test_zero_batches(self):
        assert batch_decay_weights(0, 0.5) == []

    def test_invalid_arguments(self):
        with pytest.raises(MiningError):
            batch_decay_weights(3, 0.0)
        with pytest.raises(MiningError):
            batch_decay_weights(3, 1.5)
        with pytest.raises(MiningError):
            batch_decay_weights(-1, 0.5)


class TestWeightedSupport:
    def test_weights_applied_per_batch_segment(self):
        # Two batches of three columns; pattern occurs twice in the old batch
        # and once in the new one.
        vector = BitVector.from_bitstring("110010")
        assert weighted_support(vector, [3, 6], [0.5, 1.0]) == pytest.approx(2.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(MiningError):
            weighted_support(BitVector.zeros(6), [3, 6], [1.0])

    def test_decay_one_equals_plain_count(self):
        vector = BitVector.from_bitstring("101101")
        assert weighted_support(vector, [3, 6], [1.0, 1.0]) == vector.count()


class TestTimeFadingVerticalMiner:
    def test_invalid_parameters(self):
        with pytest.raises(MiningError):
            TimeFadingVerticalMiner(decay=0)
        with pytest.raises(MiningError):
            TimeFadingVerticalMiner(decay=1.2)
        with pytest.raises(MiningError):
            TimeFadingVerticalMiner(decay=0.5).mine(DSMatrix(window_size=1), 0)

    def test_decay_one_matches_plain_vertical_miner(
        self, paper_window_matrix, paper_registry
    ):
        faded = TimeFadingVerticalMiner(decay=1.0).mine(paper_window_matrix, 2)
        plain = get_algorithm("vertical").mine(
            paper_window_matrix, 2, registry=paper_registry
        )
        assert set(faded) == set(plain)
        for items, support in plain.items():
            assert faded[items] == pytest.approx(float(support))

    def test_recent_batches_dominate_under_decay(self):
        # Item "old" only occurs in the first batch; "new" only in the last.
        matrix = DSMatrix(window_size=2)
        matrix.append_batch(Batch([["old"]] * 4))
        matrix.append_batch(Batch([["new"]] * 4))
        faded = TimeFadingVerticalMiner(decay=0.25).mine(matrix, 0.5)
        assert faded[frozenset({"new"})] == pytest.approx(4.0)
        assert faded[frozenset({"old"})] == pytest.approx(1.0)

    def test_low_weight_old_patterns_fall_below_threshold(self):
        matrix = DSMatrix(window_size=2)
        matrix.append_batch(Batch([["old", "x"]] * 4))
        matrix.append_batch(Batch([["new", "x"]] * 4))
        faded = TimeFadingVerticalMiner(decay=0.1).mine(matrix, 2.0)
        assert frozenset({"old"}) not in faded
        assert frozenset({"new"}) in faded
        assert frozenset({"new", "x"}) in faded

    def test_faded_support_is_anti_monotone(self, paper_window_matrix):
        faded = TimeFadingVerticalMiner(decay=0.7).mine(paper_window_matrix, 0.5)
        for items, support in faded.items():
            for item in items:
                subset = items - {item}
                if subset:
                    assert faded[subset] >= support - 1e-9

    def test_stats_populated(self, paper_window_matrix):
        miner = TimeFadingVerticalMiner(decay=0.9)
        miner.mine(paper_window_matrix, 1.0)
        assert miner.stats.patterns_found > 0
        assert miner.stats.bitvector_intersections > 0
        assert miner.decay == 0.9


class TestLandmarkCounter:
    def test_accumulates_without_eviction(self):
        counter = LandmarkCounter()
        counter.add_batch(Batch([["a", "b"], ["a"]]))
        counter.add_batch(Batch([["a"], ["b"]]))
        assert counter.transactions_seen == 4
        assert counter.batches_seen == 2
        assert counter.support("a") == 3
        assert counter.support("b") == 2
        assert counter.support("zzz") == 0

    def test_relative_support(self):
        counter = LandmarkCounter()
        assert counter.relative_support("a") == 0.0
        counter.add_batch(Batch([["a"], ["a"], ["b"], ["c"]]))
        assert counter.relative_support("a") == pytest.approx(0.5)

    def test_frequent_items_absolute_and_relative(self):
        counter = LandmarkCounter()
        counter.add_batch(Batch([["a", "b"], ["a"], ["a", "c"], ["b"]]))
        assert counter.frequent_items(3) == ["a"]
        assert counter.frequent_items(0.5) == ["a", "b"]
        with pytest.raises(MiningError):
            counter.frequent_items(0)

    def test_repr(self):
        assert "transactions=0" in repr(LandmarkCounter())
