"""The sharded snapshot-swapped index: parity, sharing, atomicity."""

import json
import zlib

import pytest

from repro.exceptions import HistoryError, ServeError
from repro.history import algebra
from repro.history.journal import MemoryJournal
from repro.history.query import JournalIndex
from repro.serve.shards import IndexSnapshot, ShardedJournalIndex, shard_of

from serve_helpers import mined_journal


class TestShardOf:
    def test_crc32_partitioning(self):
        # Stable across processes and restarts (unlike builtin hash()),
        # which is what makes warm-started shards line up.
        assert shard_of("a", 4) == zlib.crc32(b"a") % 4
        assert shard_of("edge:1-2", 7) == zlib.crc32(b"edge:1-2") % 7

    def test_single_shard_maps_everything_to_zero(self):
        assert shard_of("anything", 1) == 0


class TestProtocolParity:
    """Every IndexReader method must answer exactly like JournalIndex."""

    @pytest.mark.parametrize("shard_count", [1, 3, 4, 7])
    def test_reader_surface_matches_journal_index(self, records, shard_count):
        reference = JournalIndex(records)
        snapshot = ShardedJournalIndex(records, shard_count=shard_count).current
        assert snapshot.slide_ids() == reference.slide_ids()
        assert snapshot.last_slide_id == reference.last_slide_id
        items = reference.items()
        assert snapshot.items() == items
        for slide in reference.slide_ids():
            assert snapshot.has_slide(slide) == reference.has_slide(slide)
            assert snapshot.row_count(slide) == reference.row_count(slide)
            assert dict(snapshot.iter_patterns_at(slide)) == dict(
                reference.iter_patterns_at(slide)
            )
        for item in items:
            assert snapshot.posting_total(item) == reference.posting_total(item)
            for slide in reference.slide_ids():
                # The snapshot hands out immutable tuples; content parity is
                # what the algebra layer depends on.
                assert list(snapshot.posting(item, slide)) == list(
                    reference.posting(item, slide)
                )
        probe_patterns = [
            pattern
            for slide in reference.slide_ids()
            for pattern, _ in reference.iter_patterns_at(slide)
        ]
        for pattern in probe_patterns[:20]:
            for slide in reference.slide_ids():
                assert snapshot.support_at(pattern, slide) == reference.support_at(
                    pattern, slide
                )
            assert snapshot.first_frequent(pattern) == reference.first_frequent(
                pattern
            )
            assert snapshot.last_frequent(pattern) == reference.last_frequent(pattern)

    def test_stats_match(self, records):
        reference = JournalIndex(records)
        snapshot = ShardedJournalIndex(records, shard_count=4).current
        assert dict(snapshot.stats()) == dict(reference.stats())

    def test_algebra_evaluation_parity(self, records):
        reference = JournalIndex(records)
        snapshot = ShardedJournalIndex(records, shard_count=4).current
        items = reference.items()
        queries = [
            algebra.select(algebra.contains(items[0])),
            algebra.select(
                algebra.and_(
                    algebra.contains(items[-1]), algebra.support_gte(2)
                )
            ),
            algebra.select(
                algebra.or_(
                    algebra.contains(items[0]), algebra.contains(items[-1])
                )
            ),
            algebra.top_k(5),
            algebra.history(items[0]),
        ]
        for query in queries:
            sharded = algebra.evaluate(query, snapshot)
            plain = algebra.evaluate(query, reference)
            oracle = algebra.brute_force_query(query, records)
            assert sharded.payload() == plain.payload()
            result = sharded.curve if isinstance(query, algebra.History) else sharded.matches
            assert result == oracle


class TestSnapshotSwap:
    def test_swap_is_atomic_for_pinned_readers(self, records):
        index = ShardedJournalIndex(records[:-2], shard_count=4)
        pinned = index.current
        before_slides = pinned.slide_ids()
        before_rows = {s: pinned.row_count(s) for s in before_slides}
        index.extend(records[-2:])
        # The pinned snapshot answers exactly as before the commit,
        # end-to-end — no new slides, no mutated rows.
        assert pinned.slide_ids() == before_slides
        assert {s: pinned.row_count(s) for s in before_slides} == before_rows
        assert index.current is not pinned
        assert index.current.slide_ids() == [r.slide_id for r in records]

    def test_generation_and_swap_counters(self, records):
        index = ShardedJournalIndex(records[:2], shard_count=4)
        assert index.current.generation == 2
        assert index.swaps == 2
        index.extend(records[2:4])
        assert index.current.generation == 4
        assert index.swaps == 4

    def test_structural_sharing_of_untouched_shards(self, records):
        shard_count = 8
        index = ShardedJournalIndex(records[:-1], shard_count=shard_count)
        before = index.current
        last = records[-1]
        touched = {shard_of(item, shard_count) for items, _ in last.patterns for item in items}
        assert len(touched) < shard_count, "workload touches every shard; widen shard_count"
        index.extend([last])
        after = index.current
        for shard_id in range(shard_count):
            if shard_id in touched:
                assert after.shards[shard_id] is not before.shards[shard_id]
            else:
                # Untouched shards are carried by reference, not copied.
                assert after.shards[shard_id] is before.shards[shard_id]

    def test_out_of_order_extend_rejected_with_journal_index_message(self, records):
        index = ShardedJournalIndex(records, shard_count=4)
        reference = JournalIndex(records)
        with pytest.raises(HistoryError) as sharded_error:
            index.extend([records[0]])
        with pytest.raises(HistoryError) as reference_error:
            reference.extend([records[0]])
        assert str(sharded_error.value) == str(reference_error.value)

    def test_shard_count_validation(self, records):
        with pytest.raises(ServeError, match="shard count must be at least 1"):
            ShardedJournalIndex(records, shard_count=0)


class TestPayloadRoundTrip:
    def test_round_trip_preserves_answers(self, records):
        original = ShardedJournalIndex(records, shard_count=4).current
        payload = json.loads(json.dumps(original.to_payload()))
        restored = IndexSnapshot.from_payload(payload)
        assert restored.slide_ids() == original.slide_ids()
        assert dict(restored.stats()) == dict(original.stats())
        for item in original.items():
            assert restored.posting_total(item) == original.posting_total(item)
            for slide in original.slide_ids():
                assert list(restored.posting(item, slide)) == list(
                    original.posting(item, slide)
                )
        query = algebra.top_k(10)
        assert (
            algebra.evaluate(query, restored).payload()
            == algebra.evaluate(query, original).payload()
        )

    def test_from_payload_rejects_unknown_format(self):
        with pytest.raises(ServeError, match="format"):
            IndexSnapshot.from_payload({"format": "bogus/9"})

    def test_extend_after_round_trip(self):
        journal = mined_journal()
        records = journal.records()
        payload = ShardedJournalIndex(records[:3], shard_count=4).current.to_payload()
        index = ShardedJournalIndex.from_snapshot(IndexSnapshot.from_payload(payload))
        index.extend(records[3:])
        reference = JournalIndex(records)
        assert index.current.slide_ids() == reference.slide_ids()
        assert dict(index.current.stats()) == dict(reference.stats())
