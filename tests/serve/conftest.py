"""Shared fixtures for the async serving subsystem tests."""

import pytest
from serve_helpers import mined_journal


@pytest.fixture(scope="module")
def journal():
    journal = mined_journal()
    assert len(journal.records()) >= 6, "fixture journal too small to be useful"
    return journal


@pytest.fixture(scope="module")
def records(journal):
    return journal.records()
