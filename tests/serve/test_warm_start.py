"""Warm-start serving: sealed snapshots, suffix re-indexing, fallbacks."""

import json

from repro.checkpoint import load_serve_index, seal_serve_index
from repro.checkpoint.serve_index import MANIFEST_NAME, PAYLOAD_NAME, SERVE_INDEX_DIRNAME
from repro.history.journal import DiskJournal, open_journal
from repro.serve.app import ServeApp
from repro.serve.warm import JournalTail, read_journal_suffix

from serve_helpers import mined_journal

QUERY = {"select": {"where": {"contains": ["a"]}}}


def disk_journal(tmp_path, records):
    path = tmp_path / "journal"
    journal = DiskJournal(path)
    for record in records:
        journal.append(record)
    journal.close()
    return path


class TestWarmStart:
    def test_restart_reindexes_only_the_suffix(self, tmp_path, records):
        path = disk_journal(tmp_path, records[:4])
        warm = tmp_path / "warm"
        first = ServeApp.from_directory(path, warm_dir=warm)
        assert first.cold_records_indexed == 4
        assert first.hydrated_slide is None
        first.seal_warm(warm)
        first.close()
        # Another process appends two slides, then the server restarts.
        journal = open_journal(path)
        for record in records[4:6]:
            journal.append(record)
        journal.close()
        second = ServeApp.from_directory(path, warm_dir=warm)
        try:
            assert second.hydrated_slide == records[3].slide_id
            assert second.cold_records_indexed == 2  # the suffix, not all 6
            cold = ServeApp.from_directory(path)
            try:
                assert second.query(QUERY) == cold.query(QUERY)
                assert second.stats()["slides"] == cold.stats()["slides"]
            finally:
                cold.close()
        finally:
            second.close()

    def test_corrupt_payload_falls_back_to_cold(self, tmp_path, records):
        path = disk_journal(tmp_path, records)
        warm = tmp_path / "warm"
        app = ServeApp.from_directory(path, warm_dir=warm)
        app.seal_warm(warm)
        app.close()
        payload_file = warm / SERVE_INDEX_DIRNAME / PAYLOAD_NAME
        payload_file.write_text(payload_file.read_text()[:-20], encoding="utf-8")
        assert load_serve_index(warm) is None  # digest mismatch
        restarted = ServeApp.from_directory(path, warm_dir=warm)
        try:
            assert restarted.hydrated_slide is None
            assert restarted.cold_records_indexed == len(records)
        finally:
            restarted.close()

    def test_shard_count_mismatch_falls_back_to_cold(self, tmp_path, records):
        path = disk_journal(tmp_path, records)
        warm = tmp_path / "warm"
        app = ServeApp.from_directory(path, shard_count=4, warm_dir=warm)
        app.seal_warm(warm)
        app.close()
        restarted = ServeApp.from_directory(path, shard_count=8, warm_dir=warm)
        try:
            assert restarted.hydrated_slide is None
            assert restarted.cold_records_indexed == len(records)
        finally:
            restarted.close()

    def test_snapshot_beyond_journal_falls_back_to_cold(self, tmp_path, records):
        # Seal at all N slides, then restart over a journal holding fewer:
        # the snapshot is no prefix of the journal, so it must be ignored
        # (warm start must never change an answer).
        full_path = disk_journal(tmp_path, records)
        warm = tmp_path / "warm"
        app = ServeApp.from_directory(full_path, warm_dir=warm)
        app.seal_warm(warm)
        app.close()
        short_path = tmp_path / "short"
        journal = DiskJournal(short_path)
        for record in records[:2]:
            journal.append(record)
        journal.close()
        restarted = ServeApp.from_directory(short_path, warm_dir=warm)
        try:
            assert restarted.hydrated_slide is None
            assert restarted.cold_records_indexed == 2
        finally:
            restarted.close()

    def test_missing_manifest_loads_none(self, tmp_path):
        assert load_serve_index(tmp_path / "nowhere") is None

    def test_seal_replaces_previous_snapshot(self, tmp_path, records):
        warm = tmp_path / "warm"
        from repro.serve.shards import ShardedJournalIndex

        first = ShardedJournalIndex(records[:2], shard_count=4).current
        second = ShardedJournalIndex(records, shard_count=4).current
        seal_serve_index(warm, first.to_payload())
        seal_serve_index(warm, second.to_payload())
        manifest = json.loads(
            (warm / SERVE_INDEX_DIRNAME / MANIFEST_NAME).read_text(encoding="utf-8")
        )
        assert manifest["last_slide"] == records[-1].slide_id


class TestJournalTail:
    def test_incremental_polls(self, tmp_path, records):
        path = tmp_path / "journal"
        journal = DiskJournal(path)
        for record in records[:3]:
            journal.append(record)
        tail = JournalTail(path)
        got = tail.poll()
        assert [r.slide_id for r in got] == [r.slide_id for r in records[:3]]
        assert tail.poll() == []
        journal.append(records[3])
        assert [r.slide_id for r in tail.poll()] == [records[3].slide_id]
        journal.close()

    def test_seeded_after_slide_skips_prefix(self, tmp_path, records):
        path = disk_journal(tmp_path, records)
        suffix = read_journal_suffix(path, after_slide=records[1].slide_id)
        assert [r.slide_id for r in suffix] == [r.slide_id for r in records[2:]]

    def test_records_round_trip_content(self, tmp_path, records):
        path = disk_journal(tmp_path, records)
        tailed = JournalTail(path).poll()
        assert [r.patterns for r in tailed] == [r.patterns for r in records]

    def test_missing_journal_polls_empty(self, tmp_path):
        assert JournalTail(tmp_path / "nope").poll() == []
