"""Shared helpers for the async serving subsystem tests."""

from repro.core.miner import StreamSubgraphMiner
from repro.history.journal import MemoryJournal
from repro.stream.stream import TransactionStream

TRANSACTIONS = [
    ("a",),
    ("b",),
    ("a", "b"),
    ("c",),
    ("a", "c"),
    ("b", "c"),
    ("a", "b", "c"),
    ("d",),
] * 12


def mined_journal(transactions=TRANSACTIONS, window_size=3, batch_size=8, minsup=2):
    """Watch a transaction stream into a fresh in-memory journal."""
    journal = MemoryJournal()
    miner = StreamSubgraphMiner(
        window_size=window_size,
        batch_size=batch_size,
        algorithm="vertical",
        on_slide=journal.append,
    )
    miner.watch(
        TransactionStream(list(transactions), batch_size=batch_size),
        minsup,
        connected_only=False,
    )
    return journal
