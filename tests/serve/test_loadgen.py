"""The load generator: percentiles, keep-alive clients, fd headroom."""

from repro.serve.app import ServeApp
from repro.serve.http import BackgroundServer
from repro.serve.loadgen import percentile, raise_fd_limit, run_load

from serve_helpers import mined_journal


class TestPercentile:
    def test_nearest_rank(self):
        samples = [10.0, 20.0, 30.0, 40.0]
        assert percentile(samples, 0.0) == 10.0
        assert percentile(samples, 1.0) == 40.0
        assert percentile(samples, 0.5) == 30.0

    def test_empty_is_zero(self):
        assert percentile([], 0.99) == 0.0


class TestRunLoad:
    def test_concurrent_clients_all_succeed(self):
        journal = mined_journal()
        app = ServeApp.from_journal(journal, shard_count=4)
        with BackgroundServer(app) as background:
            report = run_load(
                "127.0.0.1",
                background.port,
                [{"top_k": {"k": 5}}, {"select": {"where": {"contains": ["a"]}}}],
                clients=25,
                requests_per_client=4,
            )
        assert report.errors == 0
        assert report.requests_total == 100
        assert report.status_counts == {200: 100}
        assert report.throughput_rps > 0
        assert 0 < report.latency_p50_ms <= report.latency_p99_ms <= report.latency_max_ms
        as_dict = report.as_dict()
        assert as_dict["clients"] == 25
        assert as_dict["status_counts"] == {"200": 100}

    def test_fd_limit_raise_is_safe(self):
        # Must not lower the limit and must return the (possibly raised) soft cap.
        assert raise_fd_limit() > 0
