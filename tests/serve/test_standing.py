"""Standing queries: transition semantics, exactly-once, the poll oracle."""

import pytest

from repro.exceptions import ServeError
from repro.history import algebra
from repro.serve.shards import ShardedJournalIndex
from repro.serve.standing import (
    Notification,
    StandingQuery,
    parse_standing_expression,
    poll_oracle,
)


def common_item(records):
    counts = {}
    for record in records:
        for items, _ in record.patterns:
            for item in items:
                counts[item] = counts.get(item, 0) + 1
    return max(sorted(counts), key=lambda item: counts[item])


class TestStandingSemantics:
    def test_incremental_stream_equals_poll_oracle(self, records):
        item = common_item(records)
        expression = algebra.to_json(algebra.select(algebra.contains(item)))
        events = ("enter", "exit", "update")
        split = 2
        index = ShardedJournalIndex(records[:split], shard_count=4)
        standing = StandingQuery("sub-0", expression, events)
        standing.prime(index.current)
        pushed = []
        for record in records[split:]:
            snapshot = index.extend([record])
            pushed.extend(
                notification.as_dict()
                for notification in standing.advance(snapshot, record.slide_id)
            )
        oracle = [
            notification.as_dict()
            for notification in poll_oracle(
                records,
                expression,
                events=events,
                subscription="sub-0",
                after_slide=records[split - 1].slide_id,
            )
        ]
        assert pushed == oracle
        assert len(pushed) > 0, "fixture produced no transitions; weak test"

    def test_exactly_once_per_slide(self, records):
        expression = algebra.to_json(algebra.top_k(3))
        index = ShardedJournalIndex(records[:-1], shard_count=4)
        standing = StandingQuery("s", expression, ("enter", "exit", "update"))
        standing.prime(index.current)
        snapshot = index.extend([records[-1]])
        first = standing.advance(snapshot, records[-1].slide_id)
        # Re-advancing the same slide (or an older one) is a no-op: a
        # subscriber is notified about each transition exactly once.
        assert standing.advance(snapshot, records[-1].slide_id) == []
        assert standing.advance(snapshot, records[0].slide_id) == []
        assert standing.notified == len(first)

    def test_event_filtering(self, records):
        item = common_item(records)
        expression = algebra.to_json(algebra.select(algebra.contains(item)))
        all_events = [
            notification.event
            for notification in poll_oracle(
                records, expression, events=("enter", "exit", "update")
            )
        ]
        enters_only = [
            notification.event
            for notification in poll_oracle(records, expression, events=("enter",))
        ]
        assert set(enters_only) <= {"enter"}
        assert len(enters_only) == all_events.count("enter")

    def test_fire_order_is_deterministic(self, records):
        expression = algebra.to_json(algebra.top_k(10))
        stream = poll_oracle(records, expression, events=("enter", "exit", "update"))
        for earlier, later in zip(stream, stream[1:]):
            assert earlier.slide <= later.slide
            if earlier.slide == later.slide:
                order = {"enter": 0, "exit": 1, "update": 2}
                key = lambda n: (  # noqa: E731
                    order[n.event],
                    len(n.items),
                    n.items,
                )
                assert key(earlier) <= key(later)


class TestValidation:
    def test_history_expression_rejected(self):
        with pytest.raises(ServeError, match="history is a curve"):
            parse_standing_expression(algebra.history("a"))

    def test_unknown_event_rejected(self, records):
        expression = algebra.to_json(algebra.top_k(3))
        with pytest.raises(ServeError, match="unknown standing-query events"):
            StandingQuery("s", expression, ("enter", "flicker"))

    def test_empty_events_rejected(self):
        expression = algebra.to_json(algebra.top_k(3))
        with pytest.raises(ServeError):
            StandingQuery("s", expression, ())

    def test_notification_as_dict_shape(self):
        notification = Notification(
            subscription="sub-9",
            slide=4,
            event="enter",
            items=("a", "b"),
            support=3,
            previous_support=None,
        )
        assert notification.as_dict() == {
            "subscription": "sub-9",
            "slide": 4,
            "event": "enter",
            "items": ["a", "b"],
            "support": 3,
            "previous_support": None,
        }
