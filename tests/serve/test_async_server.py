"""The asyncio front end: byte parity, SSE push, graceful shutdown."""

import asyncio
import json
import threading
from http.client import HTTPConnection

import pytest

from repro.history import algebra
from repro.history.journal import MemoryJournal
from repro.serve.app import ServeApp
from repro.serve.http import BackgroundServer
from repro.serve.loadgen import sse_collect
from repro.service.api import HistoryService
from repro.service.server import build_server

from serve_helpers import mined_journal


def post(port, body, path="/query"):
    connection = HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        connection.request("POST", path, body, {"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, response.read(), dict(response.getheaders())
    finally:
        connection.close()


def get(port, path):
    connection = HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


@pytest.fixture()
def threaded_pair():
    """A threaded server and an async server over identical journals."""
    source = mined_journal()
    threaded_journal = MemoryJournal()
    async_journal = MemoryJournal()
    prefix = list(source.records()[:3])
    live = list(source.records()[3:])
    for record in prefix:
        threaded_journal.append(record)
        async_journal.append(record)
    service = HistoryService(threaded_journal)
    threaded = build_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=threaded.serve_forever, daemon=True)
    thread.start()
    app = ServeApp.from_journal(async_journal, shard_count=4)
    background = BackgroundServer(app).start()
    yield {
        "threaded_port": threaded.server_address[1],
        "async_port": background.port,
        "service": service,
        "threaded_journal": threaded_journal,
        "app": app,
        "background": background,
        "live": live,
    }
    background.stop()
    threaded.shutdown()
    threaded.server_close()


QUERIES = [
    {"select": {"where": {"contains": ["a"]}}},
    {"select": {"where": {"or": [{"contains": ["a"]}, {"contains": ["c"]}]}}},
    {"top_k": {"k": 5}},
    {"history": {"items": ["a"]}},
]


class TestByteParity:
    def test_answers_byte_identical_including_mid_stream(self, threaded_pair):
        pair = threaded_pair
        rounds = 0
        while True:
            for expression in QUERIES:
                body = json.dumps(expression)
                threaded_status, threaded_body, _ = post(pair["threaded_port"], body)
                async_status, async_body, _ = post(pair["async_port"], body)
                assert threaded_status == async_status == 200
                assert threaded_body == async_body
            if not pair["live"]:
                break
            # Commit one live slide on both servers and re-check parity —
            # queries interleaved with slide commits must stay identical.
            record = pair["live"].pop(0)
            pair["threaded_journal"].append(record)
            pair["service"].refresh()
            pair["app"].journal.append(record)
            pair["background"].refresh()
            rounds += 1
        assert rounds >= 2, "fixture had no live slides; mid-stream leg skipped"

    def test_error_payloads_byte_identical(self, threaded_pair):
        pair = threaded_pair
        bad_bodies = [
            b"",
            b"not json",
            json.dumps({"select": {}}).encode("utf-8"),
            json.dumps({"nope": {}}).encode("utf-8"),
        ]
        for body in bad_bodies:
            threaded_status, threaded_body, _ = post(pair["threaded_port"], body)
            async_status, async_body, _ = post(pair["async_port"], body)
            assert threaded_status == async_status == 400
            assert threaded_body == async_body


class TestEndpoints:
    def test_stats_carries_serve_section(self, threaded_pair):
        status, body = get(threaded_pair["async_port"], "/stats")
        assert status == 200
        payload = json.loads(body)
        assert payload["resilience"] == {"dropped_connections": 0}
        serve = payload["serve"]
        assert serve["shards"] == 4
        assert serve["snapshot_swaps"] >= 1
        assert serve["draining"] is False
        assert serve["warm_start"] == {
            "hydrated_slide": None,
            "cold_records_indexed": 3,
        }

    def test_unknown_endpoint_404(self, threaded_pair):
        status, body = get(threaded_pair["async_port"], "/nope")
        assert status == 404
        payload = json.loads(body)
        assert payload["code"] == "unknown-endpoint"
        assert payload["endpoints"] == ["/query", "/stats", "/subscribe"]

    def test_method_not_allowed_405(self, threaded_pair):
        status, body, _ = post(threaded_pair["async_port"], b"{}", path="/stats")
        assert status == 405
        assert json.loads(body)["code"] == "method-not-allowed"

    def test_subscribe_requires_expr(self, threaded_pair):
        status, body = get(threaded_pair["async_port"], "/subscribe")
        assert status == 400
        assert json.loads(body)["code"] == "bad-query"

    def test_subscribe_rejects_history_shape(self, threaded_pair):
        from urllib.parse import quote

        expr = quote(json.dumps({"history": {"items": ["a"]}}))
        status, body = get(
            threaded_pair["async_port"], f"/subscribe?expr={expr}"
        )
        assert status == 400
        assert b"history is a curve" in body


class TestSSE:
    def test_hello_notification_shutdown_stream(self):
        # An evolving stream: the item mix shifts mid-way so standing
        # queries actually observe enter/exit/update transitions.
        evolving = (
            [("a",), ("b",), ("a", "b")] * 12
            + [("a",), ("c",), ("a", "c")] * 12
            + [("c",), ("d",), ("c", "d")] * 12
        )
        source = mined_journal(transactions=evolving)
        records = list(source.records())
        journal = MemoryJournal()
        for record in records[:3]:
            journal.append(record)
        app = ServeApp.from_journal(journal, shard_count=4)
        background = BackgroundServer(app).start()
        try:
            expression = {"top_k": {"k": 10}}

            async def drive():
                collector = asyncio.create_task(
                    sse_collect(
                        "127.0.0.1",
                        background.port,
                        expression,
                        events="enter,exit,update",
                        timeout=15.0,
                    )
                )
                loop = asyncio.get_running_loop()

                def wait_subscribed():
                    import time

                    for _ in range(1000):
                        if app.subscriptions():
                            return
                        time.sleep(0.005)
                    raise AssertionError("subscription never registered")

                await loop.run_in_executor(None, wait_subscribed)

                def commit_then_stop():
                    for record in records[3:]:
                        journal.append(record)
                        background.refresh()
                    background.stop(reason="test-shutdown")

                await loop.run_in_executor(None, commit_then_stop)
                return await collector

            frames = asyncio.run(drive())
        finally:
            background.stop()
        kinds = [event for event, _ in frames]
        assert kinds[0] == "hello"
        assert kinds[-1] == "shutdown"
        assert frames[-1][1] == {"reason": "test-shutdown"}
        hello = frames[0][1]
        assert hello["subscription"].startswith("sub-")
        assert hello["last_slide"] == records[2].slide_id
        notifications = [data for event, data in frames if event == "notification"]
        assert notifications, "no standing-query pushes observed"
        # Pushed notifications carry the full transition shape.
        for data in notifications:
            assert set(data) == {
                "subscription",
                "slide",
                "event",
                "items",
                "support",
                "previous_support",
            }
        # The subscriber is dropped once its stream closes.
        assert app.subscriptions() == {}

    def test_stats_counts_notifications(self):
        journal = mined_journal()
        app = ServeApp.from_journal(journal, shard_count=2)
        received = []
        app.subscribe({"top_k": {"k": 5}}, events=("enter", "exit"), sink=received.append)
        stats = app.stats()["serve"]
        assert stats["subscribers"] == 1
        assert stats["subscribers_total"] == 1


class TestGracefulShutdown:
    def test_shutdown_is_idempotent_and_drains(self):
        journal = mined_journal()
        app = ServeApp.from_journal(journal, shard_count=2)
        background = BackgroundServer(app).start()
        port = background.port
        status, body, _ = post(port, json.dumps({"top_k": {"k": 3}}))
        assert status == 200
        background.stop()
        background.stop()  # second stop is a no-op
        with pytest.raises(OSError):
            post(port, json.dumps({"top_k": {"k": 3}}))
