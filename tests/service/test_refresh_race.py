"""HistoryService.refresh racing concurrent queries (snapshot-swap atomicity).

``refresh`` publishes a *new* index object in one reference assignment
(:meth:`JournalIndex.extended`); it never mutates the index a concurrent
reader may have pinned.  These tests pin that contract: every answer
produced while slides commit must equal the canonical answer of some
fully committed journal prefix — never a half-applied slide.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.miner import StreamSubgraphMiner
from repro.history.journal import MemoryJournal
from repro.history.query import JournalIndex
from repro.service.api import HistoryService, evaluate_expression
from repro.stream.stream import TransactionStream

TRANSACTIONS = [
    ("a",),
    ("b",),
    ("a", "b"),
    ("c",),
    ("a", "c"),
    ("b", "c"),
    ("a", "b", "c"),
    ("d",),
] * 12

QUERY = {
    "select": {"where": {"or": [{"contains": ["a"]}, {"contains": ["c"]}]}}
}


def mined_records():
    journal = MemoryJournal()
    miner = StreamSubgraphMiner(
        window_size=3, batch_size=8, algorithm="vertical", on_slide=journal.append
    )
    miner.watch(
        TransactionStream(TRANSACTIONS, batch_size=8), 2, connected_only=False
    )
    return journal.records()


class TestRefreshRace:
    def test_extended_leaves_the_original_index_untouched(self):
        records = mined_records()
        index = JournalIndex(records[:4])
        before_ids = index.slide_ids()
        before_answer = evaluate_expression(QUERY, index)
        extended = index.extended(records[4:])
        # The old index answers exactly as before, end-to-end.
        assert index.slide_ids() == before_ids
        assert evaluate_expression(QUERY, index) == before_answer
        assert extended.slide_ids() == [r.slide_id for r in records]
        assert dict(extended.stats()) == dict(JournalIndex(records).stats())

    def test_reader_pinned_before_commit_sees_old_snapshot(self):
        records = mined_records()
        journal = MemoryJournal()
        for record in records[:4]:
            journal.append(record)
        service = HistoryService(journal)
        pinned = service.index
        expected = evaluate_expression(QUERY, pinned)
        journal.append(records[4])
        service.refresh()
        # A reader holding the pre-commit index object keeps getting the
        # pre-commit answer; the service's current index moved on.
        assert evaluate_expression(QUERY, pinned) == expected
        assert service.index is not pinned
        assert service.index.last_slide_id == records[4].slide_id

    def test_concurrent_queries_always_see_a_committed_prefix(self):
        records = mined_records()
        prefix = 3
        # Canonical answer bytes per committed prefix length.
        canonical = set()
        for end in range(prefix, len(records) + 1):
            payload = evaluate_expression(QUERY, JournalIndex(records[:end]))
            canonical.add(json.dumps(payload, sort_keys=True, default=str))
        journal = MemoryJournal()
        for record in records[:prefix]:
            journal.append(record)
        service = HistoryService(journal)
        stop = threading.Event()
        torn = []

        def reader():
            while not stop.is_set():
                answer = json.dumps(
                    service.query(QUERY), sort_keys=True, default=str
                )
                if answer not in canonical:
                    torn.append(answer)
                    return

        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(reader) for _ in range(4)]
            for record in records[prefix:]:
                journal.append(record)
                service.refresh()
            stop.set()
            for future in futures:
                future.result(timeout=30)
        assert torn == [], f"reader observed a non-prefix answer: {torn[:1]}"
        assert service.index.last_slide_id == records[-1].slide_id
