"""Service tests: the library API and the threaded HTTP front end."""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.miner import StreamSubgraphMiner
from repro.exceptions import AlgebraError, ServiceError
from repro.history import algebra
from repro.history.journal import MemoryJournal
from repro.history.query import JournalIndex
from repro.service.api import QUERY_KINDS, HistoryService
from repro.service.server import build_server
from repro.stream.stream import TransactionStream

TRANSACTIONS = [("a",), ("b",), ("a", "b"), ("c",), ("a", "c")] * 12


@pytest.fixture(scope="module")
def journal():
    journal = MemoryJournal()
    miner = StreamSubgraphMiner(
        window_size=3, batch_size=5, algorithm="vertical", on_slide=journal.append
    )
    miner.watch(
        TransactionStream(TRANSACTIONS, batch_size=5), minsup=2, connected_only=False
    )
    return journal


@pytest.fixture(scope="module")
def service(journal):
    return HistoryService(journal)


class TestHistoryService:
    def test_patterns_super(self, service):
        payload = service.patterns(["a"], slide=11, mode="super")
        assert payload["query"] == {"items": ["a"], "mode": "super", "slide": 11}
        items = {tuple(match["items"]) for match in payload["matches"]}
        assert ("a",) in items and ("a", "b") in items
        assert payload["count"] == len(payload["matches"])

    def test_patterns_sub_and_exact(self, service):
        sub = service.patterns(["a", "b", "c"], slide=11, mode="sub")
        assert all(
            set(match["items"]) <= {"a", "b", "c"} for match in sub["matches"]
        )
        exact = service.patterns(["a", "b"], slide=11, mode="exact")
        assert [match["items"] for match in exact["matches"]] == [["a", "b"]]

    def test_patterns_invalid_mode_or_empty_items(self, service):
        with pytest.raises(ServiceError):
            service.patterns(["a"], mode="bogus")
        with pytest.raises(ServiceError):
            service.patterns([])

    def test_history_endpoint(self, service, journal):
        payload = service.history(["a", "b"])
        assert len(payload["history"]) == len(journal)
        assert payload["first_frequent"] == 1
        assert payload["last_frequent"] == journal.last_slide_id
        assert payload["peak_support"] >= 2

    def test_topk_endpoint(self, service):
        payload = service.topk(k=2)
        assert payload["count"] == 2
        supports = [match["support"] for match in payload["matches"]]
        assert supports == sorted(supports, reverse=True)
        with pytest.raises(ServiceError):
            service.topk(k=0)

    def test_stats_endpoint(self, service, journal):
        payload = service.stats()
        assert payload["slides"] == len(journal)
        assert payload["journal"]["backend"] == "memory"

    def test_run_query_dispatch(self, service):
        assert service.run_query("stats")["slides"] > 0
        assert service.run_query("topk", k=1)["count"] == 1
        assert service.run_query("support-history", items=["a"])["history"]
        assert service.run_query("first-frequent", items=["a"])["first_frequent"] == 0
        assert service.run_query("last-frequent", items=["a"])["last_frequent"] == 11
        assert service.run_query("super", items=["a"])["count"] > 0
        with pytest.raises(ServiceError):
            service.run_query("super")  # items required
        with pytest.raises(ServiceError):
            service.run_query("bogus", items=["a"])

    def test_query_kinds_all_dispatchable(self, service):
        for kind in QUERY_KINDS:
            assert service.run_query(kind, items=["a"], k=3) is not None

    def test_payloads_are_json_serialisable(self, service):
        for kind in QUERY_KINDS:
            json.dumps(service.run_query(kind, items=["a", "b"], k=2))


class TestAlgebraQuery:
    """POST-/query semantics exercised through the in-process API."""

    def test_select_payload_carries_explain(self, service):
        payload = service.query({"select": {"where": {"contains": ["a"]}}})
        assert payload["count"] == len(payload["matches"])
        assert payload["count"] > 0
        explain = payload["explain"]
        assert explain["shape"] == "select"
        assert explain["q_error"] >= 1.0
        assert explain["plan"][0].startswith("contains(a)")
        json.dumps(payload)

    def test_ast_input_accepted(self, service):
        from_ast = service.query(algebra.select(algebra.contains("a")))
        from_json = service.query({"select": {"where": {"contains": ["a"]}}})
        assert from_ast == from_json

    def test_legacy_endpoints_are_canned_plans(self, service):
        """Each legacy payload equals its algebra expression's matches."""
        for kind, kwargs in (
            ("super", {"items": ["a"], "slide": 11}),
            ("sub", {"items": ["a", "b", "c"], "slide": 11}),
            ("exact", {"items": ["a", "b"], "slide": 11}),
        ):
            legacy = service.patterns(kwargs["items"], slide=kwargs["slide"], mode=kind)
            expression = service.canned_query(kind, **kwargs)
            algebraic = service.query(expression)
            assert legacy["matches"] == algebraic["matches"]
        legacy = service.topk(k=3)
        algebraic = service.query(service.canned_query("topk", k=3))
        assert legacy["matches"] == algebraic["matches"]
        legacy = service.history(["a", "b"])
        algebraic = service.query(service.canned_query("history", items=["a", "b"]))
        assert legacy["history"] == algebraic["history"]
        assert legacy["first_frequent"] == algebraic["first_frequent"]
        assert legacy["last_frequent"] == algebraic["last_frequent"]

    def test_run_query_expr_short_circuits(self, service):
        expr = {"top_k": {"k": 2}}
        assert service.run_query("stats", expr=expr) == service.query(expr)

    def test_malformed_expression_raises_with_path(self, service):
        with pytest.raises(AlgebraError) as excinfo:
            service.query({"select": {"where": {"bogus": []}}})
        assert excinfo.value.path == "$.select.where.bogus"
        assert excinfo.value.code == "malformed-expression"
        with pytest.raises(AlgebraError):
            service.query(["not", "an", "object"])


class TestIncrementalRefresh:
    def make_service(self, transactions):
        journal = MemoryJournal()
        miner = StreamSubgraphMiner(
            window_size=3, batch_size=5, algorithm="vertical", on_slide=journal.append
        )
        miner.watch(
            TransactionStream(transactions, batch_size=5),
            minsup=2,
            connected_only=False,
        )
        return HistoryService(journal)

    def test_refresh_swaps_in_an_extended_snapshot(self):
        service = self.make_service(TRANSACTIONS[:30])
        index = service.index
        before = len(index)
        before_slides = index.slide_ids()
        for record in self.make_service(TRANSACTIONS).journal.records():
            if record.slide_id > index.last_slide_id:
                service.journal.append(record)
        service.refresh()
        # A *new* index object, extended with only the unseen suffix; the
        # old one is untouched so pinned readers keep a consistent view
        # (DESIGN.md §15.1).
        assert service.index is not index
        assert len(service.index) > before
        assert len(index) == before
        assert index.slide_ids() == before_slides

    def test_refresh_matches_full_rebuild(self):
        service = self.make_service(TRANSACTIONS[:30])
        for record in self.make_service(TRANSACTIONS).journal.records():
            if record.slide_id > service.index.last_slide_id:
                service.journal.append(record)
        service.refresh()
        rebuilt = JournalIndex.from_journal(service.journal)
        assert service.index.stats() == rebuilt.stats()
        assert service.index.slide_ids() == rebuilt.slide_ids()
        for slide in rebuilt.slide_ids():
            assert service.index.patterns_at(slide) == rebuilt.patterns_at(slide)
        expr = {"select": {"where": {"contains": ["a"]}}}
        assert service.query(expr)["matches"] == HistoryService(
            service.journal
        ).query(expr)["matches"]

    def test_refresh_without_new_records_is_noop(self):
        service = self.make_service(TRANSACTIONS)
        stats = service.index.stats()
        service.refresh()
        assert service.index.stats() == stats


class TestHTTPServer:
    @pytest.fixture()
    def server(self, service):
        server = build_server(service, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    @staticmethod
    def get(server, path):
        port = server.server_address[1]
        with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=10) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))

    @staticmethod
    def post(server, path, body):
        port = server.server_address[1]
        data = body if isinstance(body, bytes) else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}",
            data=data,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))

    def test_endpoints_respond(self, server, journal):
        status, stats = self.get(server, "/stats")
        assert status == 200 and stats["slides"] == len(journal)
        status, topk = self.get(server, "/topk?k=3")
        assert status == 200 and topk["count"] == 3
        status, history = self.get(server, "/history?items=a,b")
        assert status == 200 and history["first_frequent"] == 1
        status, patterns = self.get(server, "/patterns?items=a&mode=super&slide=11")
        assert status == 200 and patterns["count"] >= 2

    def test_concurrent_readers(self, server, service):
        """The ThreadingHTTPServer smoke: >= 4 parallel clients, consistent answers."""
        paths = ["/stats", "/topk?k=2", "/history?items=a", "/patterns?items=a,b"] * 6
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(lambda path: self.get(server, path), paths))
        assert all(status == 200 for status, _ in results)
        # Every repetition of the same path returned the identical payload.
        by_path = {}
        for path, (_, payload) in zip(paths, results):
            by_path.setdefault(path, []).append(payload)
        for payloads in by_path.values():
            assert all(payload == payloads[0] for payload in payloads)
        # And the served answers equal the in-process API's, plus the
        # server-level resilience summary (DESIGN.md §14).
        served_stats = dict(by_path["/stats"][0])
        assert served_stats.pop("resilience") == {"dropped_connections": 0}
        assert served_stats == json.loads(json.dumps(service.stats()))

    def test_unknown_endpoint_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.get(server, "/nope")
        assert excinfo.value.code == 404
        payload = json.loads(excinfo.value.read().decode("utf-8"))
        assert "/patterns" in payload["endpoints"]

    def test_bad_parameters_400(self, server):
        for path in (
            "/patterns",
            "/history",
            "/topk?k=x",
            "/topk?k=0",
            "/patterns?items=a&slide=999",
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self.get(server, path)
            assert excinfo.value.code == 400
            payload = json.loads(excinfo.value.read().decode("utf-8"))
            assert "error" in payload and "code" in payload

    def test_post_query_select(self, server, service):
        status, payload = self.post(
            server, "/query", {"select": {"where": {"contains": ["a"]}}}
        )
        assert status == 200
        assert payload["count"] == len(payload["matches"]) > 0
        assert payload["explain"]["q_error"] >= 1.0
        assert payload == service.query({"select": {"where": {"contains": ["a"]}}})

    def test_post_query_matches_legacy_get(self, server, journal):
        """The migration map holds over the wire: canned GET == algebra POST."""
        last = journal.last_slide_id
        _, legacy = self.get(server, "/topk?k=3")
        _, algebraic = self.post(
            server, "/query", {"top_k": {"k": 3, "where": {"slides": [last, last]}}}
        )
        assert legacy["matches"] == algebraic["matches"]
        _, legacy = self.get(server, f"/patterns?items=a&mode=super&slide={last}")
        _, algebraic = self.post(
            server,
            "/query",
            {
                "select": {
                    "where": {"and": [{"contains": ["a"]}, {"slides": [last, last]}]}
                }
            },
        )
        assert legacy["matches"] == algebraic["matches"]
        _, legacy = self.get(server, "/history?items=a,b")
        _, algebraic = self.post(server, "/query", {"history": {"items": ["a", "b"]}})
        assert legacy["history"] == algebraic["history"]
        assert legacy["first_frequent"] == algebraic["first_frequent"]

    def test_post_invalid_json_400(self, server):
        for body in (b"{not json", b""):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self.post(server, "/query", body)
            assert excinfo.value.code == 400
            payload = json.loads(excinfo.value.read().decode("utf-8"))
            assert payload["code"] == "invalid-json"

    def test_post_malformed_expression_400_with_path(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.post(
                server,
                "/query",
                {"select": {"where": {"and": [{"contains": ["a"]}, {"bogus": 1}]}}},
            )
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read().decode("utf-8"))
        assert payload["code"] == "malformed-expression"
        assert payload["path"] == "$.select.where.and[1].bogus"

    def test_post_unknown_endpoint_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.post(server, "/stats", {"select": {"where": {"contains": ["a"]}}})
        assert excinfo.value.code == 404

    def test_deprecated_gets_carry_headers(self, server):
        port = server.server_address[1]
        for path, expect in (
            ("/topk?k=1", True),
            ("/history?items=a", True),
            ("/patterns?items=a", True),
            ("/stats", False),
        ):
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=10
            ) as resp:
                assert (resp.headers.get("Deprecation") == "true") is expect
                if expect:
                    assert "POST /query" in resp.headers.get("Sunset-Hint", "")
