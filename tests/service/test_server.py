"""Service tests: the library API and the threaded HTTP front end."""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.miner import StreamSubgraphMiner
from repro.exceptions import ServiceError
from repro.history.journal import MemoryJournal
from repro.service.api import QUERY_KINDS, HistoryService
from repro.service.server import build_server
from repro.stream.stream import TransactionStream

TRANSACTIONS = [("a",), ("b",), ("a", "b"), ("c",), ("a", "c")] * 12


@pytest.fixture(scope="module")
def journal():
    journal = MemoryJournal()
    miner = StreamSubgraphMiner(
        window_size=3, batch_size=5, algorithm="vertical", on_slide=journal.append
    )
    miner.watch(
        TransactionStream(TRANSACTIONS, batch_size=5), minsup=2, connected_only=False
    )
    return journal


@pytest.fixture(scope="module")
def service(journal):
    return HistoryService(journal)


class TestHistoryService:
    def test_patterns_super(self, service):
        payload = service.patterns(["a"], slide=11, mode="super")
        assert payload["query"] == {"items": ["a"], "mode": "super", "slide": 11}
        items = {tuple(match["items"]) for match in payload["matches"]}
        assert ("a",) in items and ("a", "b") in items
        assert payload["count"] == len(payload["matches"])

    def test_patterns_sub_and_exact(self, service):
        sub = service.patterns(["a", "b", "c"], slide=11, mode="sub")
        assert all(
            set(match["items"]) <= {"a", "b", "c"} for match in sub["matches"]
        )
        exact = service.patterns(["a", "b"], slide=11, mode="exact")
        assert [match["items"] for match in exact["matches"]] == [["a", "b"]]

    def test_patterns_invalid_mode_or_empty_items(self, service):
        with pytest.raises(ServiceError):
            service.patterns(["a"], mode="bogus")
        with pytest.raises(ServiceError):
            service.patterns([])

    def test_history_endpoint(self, service, journal):
        payload = service.history(["a", "b"])
        assert len(payload["history"]) == len(journal)
        assert payload["first_frequent"] == 1
        assert payload["last_frequent"] == journal.last_slide_id
        assert payload["peak_support"] >= 2

    def test_topk_endpoint(self, service):
        payload = service.topk(k=2)
        assert payload["count"] == 2
        supports = [match["support"] for match in payload["matches"]]
        assert supports == sorted(supports, reverse=True)
        with pytest.raises(ServiceError):
            service.topk(k=0)

    def test_stats_endpoint(self, service, journal):
        payload = service.stats()
        assert payload["slides"] == len(journal)
        assert payload["journal"]["backend"] == "memory"

    def test_run_query_dispatch(self, service):
        assert service.run_query("stats")["slides"] > 0
        assert service.run_query("topk", k=1)["count"] == 1
        assert service.run_query("support-history", items=["a"])["history"]
        assert service.run_query("first-frequent", items=["a"])["first_frequent"] == 0
        assert service.run_query("last-frequent", items=["a"])["last_frequent"] == 11
        assert service.run_query("super", items=["a"])["count"] > 0
        with pytest.raises(ServiceError):
            service.run_query("super")  # items required
        with pytest.raises(ServiceError):
            service.run_query("bogus", items=["a"])

    def test_query_kinds_all_dispatchable(self, service):
        for kind in QUERY_KINDS:
            assert service.run_query(kind, items=["a"], k=3) is not None

    def test_payloads_are_json_serialisable(self, service):
        for kind in QUERY_KINDS:
            json.dumps(service.run_query(kind, items=["a", "b"], k=2))


class TestHTTPServer:
    @pytest.fixture()
    def server(self, service):
        server = build_server(service, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    @staticmethod
    def get(server, path):
        port = server.server_address[1]
        with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=10) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))

    def test_endpoints_respond(self, server, journal):
        status, stats = self.get(server, "/stats")
        assert status == 200 and stats["slides"] == len(journal)
        status, topk = self.get(server, "/topk?k=3")
        assert status == 200 and topk["count"] == 3
        status, history = self.get(server, "/history?items=a,b")
        assert status == 200 and history["first_frequent"] == 1
        status, patterns = self.get(server, "/patterns?items=a&mode=super&slide=11")
        assert status == 200 and patterns["count"] >= 2

    def test_concurrent_readers(self, server, service):
        """The ThreadingHTTPServer smoke: >= 4 parallel clients, consistent answers."""
        paths = ["/stats", "/topk?k=2", "/history?items=a", "/patterns?items=a,b"] * 6
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(lambda path: self.get(server, path), paths))
        assert all(status == 200 for status, _ in results)
        # Every repetition of the same path returned the identical payload.
        by_path = {}
        for path, (_, payload) in zip(paths, results):
            by_path.setdefault(path, []).append(payload)
        for payloads in by_path.values():
            assert all(payload == payloads[0] for payload in payloads)
        # And the served answers equal the in-process API's.
        assert by_path["/stats"][0] == json.loads(json.dumps(service.stats()))

    def test_unknown_endpoint_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.get(server, "/nope")
        assert excinfo.value.code == 404
        payload = json.loads(excinfo.value.read().decode("utf-8"))
        assert "/patterns" in payload["endpoints"]

    def test_bad_parameters_400(self, server):
        for path in (
            "/patterns",
            "/history",
            "/topk?k=x",
            "/topk?k=0",
            "/patterns?items=a&slide=999",
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self.get(server, path)
            assert excinfo.value.code == 400
            assert "error" in json.loads(excinfo.value.read().decode("utf-8"))
