"""Unit tests for the watch supervisor: budget, backoff, resets, signals.

The spawn/sleep/clock hooks are injected with fakes, so the restart logic
is exercised without real processes or real waiting.
"""

import pytest

from repro.service.supervisor import RestartPolicy, Supervisor, SupervisorError


class FakeChild:
    def __init__(self, returncode):
        self.returncode = returncode

    def wait(self):
        return self.returncode


class Harness:
    """Scripted children + a clock that advances a set uptime per run."""

    def __init__(self, returncodes, uptimes=None):
        self.returncodes = list(returncodes)
        self.uptimes = list(uptimes) if uptimes is not None else None
        self.spawned = []
        self.sleeps = []
        self.events = []
        self._now = 0.0

    def spawn(self, command):
        self.spawned.append(list(command))
        return FakeChild(self.returncodes[len(self.spawned) - 1])

    def clock(self):
        # Called twice per attempt (start, exit): advance by the scripted
        # uptime on the second call of each pair.
        if self.uptimes is not None and len(self.spawned) <= len(self.uptimes):
            uptime = self.uptimes[len(self.spawned) - 1] / 2.0
        else:
            uptime = 0.0
        self._now += uptime
        return self._now

    def supervisor(self, **policy_kwargs):
        return Supervisor(
            ["repro", "watch", "x"],
            RestartPolicy(**policy_kwargs),
            emit=self.events.append,
            spawn=self.spawn,
            sleep=self.sleeps.append,
            clock=self.clock,
        )


class TestSupervisor:
    def test_clean_exit_stops_without_restarting(self):
        harness = Harness([0])
        assert harness.supervisor().run() == 0
        assert len(harness.spawned) == 1
        assert harness.sleeps == []
        assert [event["event"] for event in harness.events] == ["start", "exit"]

    def test_restart_budget_then_propagate_exit_code(self):
        harness = Harness([1, 1, 1, 1])
        code = harness.supervisor(max_restarts=3, stable_after_s=1e9).run()
        assert code == 1
        assert len(harness.spawned) == 4  # first launch + 3 restarts
        assert harness.events[-1]["event"] == "budget-exhausted"

    def test_backoff_grows_exponentially_and_caps(self):
        harness = Harness([1] * 6)
        harness.supervisor(
            max_restarts=5, backoff_s=0.5, backoff_factor=2.0,
            max_backoff_s=3.0, stable_after_s=1e9,
        ).run()
        assert harness.sleeps == [0.5, 1.0, 2.0, 3.0, 3.0]

    def test_signal_death_maps_to_shell_exit_code(self):
        harness = Harness([-9])
        code = harness.supervisor(max_restarts=0).run()
        assert code == 137  # 128 + SIGKILL

    def test_stable_uptime_resets_budget_and_backoff(self):
        # Crash, restart, run stably, crash again: the stable run forgives
        # the spent restart, so the second crash restarts (fresh budget,
        # base backoff) instead of exhausting a max_restarts=1 budget.
        harness = Harness([1, 1, 0], uptimes=[0.0, 100.0, 0.0])
        code = harness.supervisor(
            max_restarts=1, backoff_s=0.5, backoff_factor=2.0,
            max_backoff_s=30.0, stable_after_s=30.0,
        ).run()
        assert code == 0
        assert len(harness.spawned) == 3
        assert "budget-reset" in [event["event"] for event in harness.events]
        # Backoff restarted from its base after the stable run.
        assert harness.sleeps == [0.5, 0.5]

    def test_backoff_cap_hit_exactly_stays_at_the_cap(self):
        # The ladder lands exactly on max_backoff_s (0.5 -> 1.0 -> 2.0 with
        # a 2.0 cap); the capped value repeats instead of overshooting.
        harness = Harness([1] * 5)
        harness.supervisor(
            max_restarts=4, backoff_s=0.5, backoff_factor=2.0,
            max_backoff_s=2.0, stable_after_s=1e9,
        ).run()
        assert harness.sleeps == [0.5, 1.0, 2.0, 2.0]

    def test_uptime_exactly_at_stability_boundary_resets_budget(self):
        # stable_after_s is inclusive: a child that crashes at exactly the
        # boundary still counts as recovered.  (The harness clock advances
        # half the scripted value per call, so 60.0 measures as 30.0.)
        harness = Harness([1, 1, 0], uptimes=[0.0, 60.0, 0.0])
        code = harness.supervisor(max_restarts=1, stable_after_s=30.0).run()
        assert code == 0
        assert len(harness.spawned) == 3
        assert "budget-reset" in [event["event"] for event in harness.events]

    def test_uptime_just_below_the_boundary_does_not_reset(self):
        harness = Harness([1, 1, 0], uptimes=[0.0, 59.8, 0.0])
        code = harness.supervisor(max_restarts=1, stable_after_s=30.0).run()
        assert code == 1
        assert len(harness.spawned) == 2
        assert harness.events[-1]["event"] == "budget-exhausted"
        assert "budget-reset" not in [event["event"] for event in harness.events]

    def test_no_reset_event_when_no_restarts_were_spent(self):
        # A first launch that runs stably then crashes has nothing to
        # forgive: restarting is fine, but no budget-reset is narrated.
        harness = Harness([1, 0], uptimes=[100.0, 0.0])
        code = harness.supervisor(max_restarts=1, stable_after_s=30.0).run()
        assert code == 0
        assert "budget-reset" not in [event["event"] for event in harness.events]

    @pytest.mark.parametrize(
        "returncode,expected",
        [(-9, 137), (-11, 139), (-15, 143)],  # SIGKILL, SIGSEGV, SIGTERM
    )
    def test_signal_deaths_map_to_shell_convention(self, returncode, expected):
        harness = Harness([returncode])
        assert harness.supervisor(max_restarts=0).run() == expected
        assert harness.events[-1]["exit_code"] == expected

    def test_events_carry_the_command_and_attempt(self):
        harness = Harness([0])
        harness.supervisor().run()
        start = harness.events[0]
        assert start["command"] == ["repro", "watch", "x"]
        assert start["attempt"] == 1

    def test_empty_command_rejected(self):
        with pytest.raises(SupervisorError):
            Supervisor([])


class TestRestartPolicy:
    def test_validation(self):
        with pytest.raises(SupervisorError):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(SupervisorError):
            RestartPolicy(backoff_s=-0.1)
        with pytest.raises(SupervisorError):
            RestartPolicy(backoff_factor=0.5)
        with pytest.raises(SupervisorError):
            RestartPolicy(backoff_s=5.0, max_backoff_s=1.0)
        with pytest.raises(SupervisorError):
            RestartPolicy(stable_after_s=-1.0)

    def test_defaults_are_usable(self):
        policy = RestartPolicy()
        assert policy.max_restarts == 5
        assert policy.backoff_s == 0.5
