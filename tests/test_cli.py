"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import EXIT_INPUT_ERROR, EXIT_USAGE_ERROR, build_parser, main
from repro.datasets.fimi import read_fimi


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--algorithm", "bogus"])


class TestDemo:
    def test_demo_prints_15_connected_subgraphs(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "15 frequent connected subgraphs" in output
        assert "{a,c}" in output

    @pytest.mark.parametrize("algorithm", ["vertical", "fptree_multi"])
    def test_demo_with_other_algorithms(self, algorithm, capsys):
        assert main(["demo", "--algorithm", algorithm]) == 0
        assert "15 frequent connected subgraphs" in capsys.readouterr().out

    def test_demo_with_higher_minsup(self, capsys):
        assert main(["demo", "--minsup", "4"]) == 0
        output = capsys.readouterr().out
        assert "minsup=4" in output


class TestGenerateAndMine:
    def test_generate_graph_dataset(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        assert main(["generate", str(target), "--kind", "graph", "--count", "50"]) == 0
        assert target.exists()
        assert len(read_fimi(target)) == 50

    def test_generate_ibm_dataset(self, tmp_path):
        target = tmp_path / "ibm.fimi"
        assert main(["generate", str(target), "--kind", "ibm", "--count", "30"]) == 0
        assert len(read_fimi(target)) == 30

    def test_generate_connect4_dataset(self, tmp_path):
        target = tmp_path / "c4.fimi"
        assert main(["generate", str(target), "--kind", "connect4", "--count", "10"]) == 0
        transactions = read_fimi(target)
        assert all(len(t) == 43 for t in transactions)

    def test_mine_generated_dataset(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "60", "--seed", "5"])
        capsys.readouterr()
        assert (
            main(
                [
                    "mine",
                    str(target),
                    "--batch-size",
                    "20",
                    "--window",
                    "2",
                    "--minsup",
                    "4",
                    "--top",
                    "5",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "frequent patterns" in output
        assert "support=" in output

    def test_mine_with_disk_storage(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "60", "--seed", "5"])
        capsys.readouterr()
        storage_dir = tmp_path / "segments"
        assert (
            main(
                [
                    "mine",
                    str(target),
                    "--batch-size",
                    "20",
                    "--window",
                    "2",
                    "--minsup",
                    "4",
                    "--storage",
                    "disk",
                    "--storage-path",
                    str(storage_dir),
                ]
            )
            == 0
        )
        assert "frequent patterns" in capsys.readouterr().out
        assert (storage_dir / "manifest.json").exists()

    def test_mine_disk_storage_requires_path(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "20", "--seed", "5"])
        capsys.readouterr()
        assert main(["mine", str(target), "--storage", "disk"]) == 2
        assert "requires --storage-path" in capsys.readouterr().err

    def test_mine_memory_storage_rejects_path(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "20", "--seed", "5"])
        capsys.readouterr()
        code = main(
            ["mine", str(target), "--storage", "memory", "--storage-path", str(tmp_path / "s")]
        )
        assert code == 2
        assert "does not persist" in capsys.readouterr().err

    def test_mine_with_workers_matches_sequential(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "60", "--seed", "5"])
        capsys.readouterr()
        base_args = [
            "mine", str(target), "--batch-size", "20", "--window", "2",
            "--minsup", "4", "--format", "json",
        ]
        assert main(base_args) == 0
        sequential = capsys.readouterr().out
        assert main(base_args + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert json.loads(parallel) == json.loads(sequential)

    def test_mine_workers_with_disk_storage(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "60", "--seed", "5"])
        capsys.readouterr()
        storage_dir = tmp_path / "segments"
        code = main(
            [
                "mine", str(target), "--batch-size", "20", "--window", "2",
                "--minsup", "4", "--workers", "2",
                "--storage", "disk", "--storage-path", str(storage_dir),
            ]
        )
        assert code == 0
        assert "frequent patterns" in capsys.readouterr().out
        assert (storage_dir / "manifest.json").exists()

    def test_mine_rejects_negative_workers(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "20", "--seed", "5"])
        capsys.readouterr()
        assert main(["mine", str(target), "--workers", "-1"]) == EXIT_USAGE_ERROR
        err = capsys.readouterr().err
        assert err.startswith("error: --workers must be non-negative")
        assert len(err.strip().splitlines()) == 1  # one-line error, no traceback

    def test_mine_rejects_negative_ingest_workers(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "20", "--seed", "5"])
        capsys.readouterr()
        code = main(["mine", str(target), "--ingest-workers", "-2"])
        assert code == EXIT_USAGE_ERROR
        err = capsys.readouterr().err
        assert err.startswith("error: --ingest-workers must be non-negative")
        assert len(err.strip().splitlines()) == 1  # one-line error, no traceback

    def test_mine_with_ingest_workers_matches_sequential(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "60", "--seed", "5"])
        capsys.readouterr()
        base_args = [
            "mine", str(target), "--batch-size", "20", "--window", "2",
            "--minsup", "4", "--format", "json",
        ]
        assert main(base_args) == 0
        sequential = capsys.readouterr().out
        assert main(base_args + ["--ingest-workers", "2"]) == 0
        assert capsys.readouterr().out == sequential

    def test_mine_ingest_workers_with_disk_storage_and_mining_workers(
        self, tmp_path, capsys
    ):
        """The fully parallel pipeline: sharded ingest feeding sharded mining."""
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "60", "--seed", "5"])
        capsys.readouterr()
        base_args = [
            "mine", str(target), "--batch-size", "20", "--window", "2",
            "--minsup", "4", "--format", "json",
        ]
        assert main(base_args) == 0
        sequential = capsys.readouterr().out
        storage_dir = tmp_path / "segments"
        code = main(
            base_args
            + [
                "--ingest-workers", "2", "--workers", "2",
                "--storage", "disk", "--storage-path", str(storage_dir),
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == sequential
        assert (storage_dir / "manifest.json").exists()


class TestMineInputErrors:
    def test_missing_input_file_exits_with_stable_code(self, tmp_path, capsys):
        missing = tmp_path / "nope.fimi"
        code = main(["mine", str(missing)])
        assert code == EXIT_INPUT_ERROR
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read input file:")
        assert len(err.strip().splitlines()) == 1  # one-line error, no traceback

    def test_corrupt_binary_input_exits_with_stable_code(self, tmp_path, capsys):
        corrupt = tmp_path / "corrupt.fimi"
        corrupt.write_bytes(b"\xff\xfe\x00DSEG\x80garbage")
        code = main(["mine", str(corrupt)])
        assert code == EXIT_INPUT_ERROR
        assert "error: cannot read input file:" in capsys.readouterr().err

    def test_directory_as_input_exits_with_stable_code(self, tmp_path, capsys):
        code = main(["mine", str(tmp_path)])
        assert code == EXIT_INPUT_ERROR
        assert "error: cannot read input file:" in capsys.readouterr().err


class TestBench:
    def test_bench_e1_table(self, capsys):
        assert main(["bench", "e1", "--scale", "tiny"]) == 0
        output = capsys.readouterr().out
        assert "E1-accuracy" in output
        assert "all_collections_identical: True" in output

    def test_bench_json_output(self, capsys):
        assert main(["bench", "e4", "--scale", "tiny", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "E4-minsup-sweep"
        assert payload["rows"]


class TestMineOutputFormats:
    def _generate(self, tmp_path):
        source = tmp_path / "graph.fimi"
        main(["generate", str(source), "--kind", "graph", "--count", "60", "--seed", "5"])
        return source

    def test_json_format(self, tmp_path, capsys):
        source = self._generate(tmp_path)
        capsys.readouterr()
        assert main(["mine", str(source), "--batch-size", "20", "--window", "2",
                     "--minsup", "4", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list)
        assert all("support" in record for record in payload)

    def test_csv_format_to_file(self, tmp_path, capsys):
        source = self._generate(tmp_path)
        target = tmp_path / "patterns.csv"
        capsys.readouterr()
        assert main(["mine", str(source), "--batch-size", "20", "--window", "2",
                     "--minsup", "4", "--format", "csv", "--output", str(target)]) == 0
        assert "wrote" in capsys.readouterr().out
        lines = target.read_text(encoding="utf-8").strip().splitlines()
        assert lines[0].startswith("items,")
        assert len(lines) > 1
