"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import EXIT_INPUT_ERROR, EXIT_USAGE_ERROR, build_parser, main
from repro.datasets.fimi import read_fimi


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--algorithm", "bogus"])


class TestDemo:
    def test_demo_prints_15_connected_subgraphs(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "15 frequent connected subgraphs" in output
        assert "{a,c}" in output

    @pytest.mark.parametrize("algorithm", ["vertical", "fptree_multi"])
    def test_demo_with_other_algorithms(self, algorithm, capsys):
        assert main(["demo", "--algorithm", algorithm]) == 0
        assert "15 frequent connected subgraphs" in capsys.readouterr().out

    def test_demo_with_higher_minsup(self, capsys):
        assert main(["demo", "--minsup", "4"]) == 0
        output = capsys.readouterr().out
        assert "minsup=4" in output


class TestGenerateAndMine:
    def test_generate_graph_dataset(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        assert main(["generate", str(target), "--kind", "graph", "--count", "50"]) == 0
        assert target.exists()
        assert len(read_fimi(target)) == 50

    def test_generate_ibm_dataset(self, tmp_path):
        target = tmp_path / "ibm.fimi"
        assert main(["generate", str(target), "--kind", "ibm", "--count", "30"]) == 0
        assert len(read_fimi(target)) == 30

    def test_generate_connect4_dataset(self, tmp_path):
        target = tmp_path / "c4.fimi"
        assert main(["generate", str(target), "--kind", "connect4", "--count", "10"]) == 0
        transactions = read_fimi(target)
        assert all(len(t) == 43 for t in transactions)

    def test_mine_generated_dataset(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "60", "--seed", "5"])
        capsys.readouterr()
        assert (
            main(
                [
                    "mine",
                    str(target),
                    "--batch-size",
                    "20",
                    "--window",
                    "2",
                    "--minsup",
                    "4",
                    "--top",
                    "5",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "frequent patterns" in output
        assert "support=" in output

    def test_mine_with_disk_storage(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "60", "--seed", "5"])
        capsys.readouterr()
        storage_dir = tmp_path / "segments"
        assert (
            main(
                [
                    "mine",
                    str(target),
                    "--batch-size",
                    "20",
                    "--window",
                    "2",
                    "--minsup",
                    "4",
                    "--storage",
                    "disk",
                    "--storage-path",
                    str(storage_dir),
                ]
            )
            == 0
        )
        assert "frequent patterns" in capsys.readouterr().out
        assert (storage_dir / "manifest.json").exists()

    def test_mine_disk_storage_requires_path(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "20", "--seed", "5"])
        capsys.readouterr()
        assert main(["mine", str(target), "--storage", "disk"]) == 2
        assert "requires --storage-path" in capsys.readouterr().err

    def test_mine_memory_storage_rejects_path(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "20", "--seed", "5"])
        capsys.readouterr()
        code = main(
            ["mine", str(target), "--storage", "memory", "--storage-path", str(tmp_path / "s")]
        )
        assert code == 2
        assert "does not persist" in capsys.readouterr().err

    def test_mine_with_workers_matches_sequential(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "60", "--seed", "5"])
        capsys.readouterr()
        base_args = [
            "mine", str(target), "--batch-size", "20", "--window", "2",
            "--minsup", "4", "--format", "json",
        ]
        assert main(base_args) == 0
        sequential = capsys.readouterr().out
        assert main(base_args + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert json.loads(parallel) == json.loads(sequential)

    def test_mine_workers_with_disk_storage(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "60", "--seed", "5"])
        capsys.readouterr()
        storage_dir = tmp_path / "segments"
        code = main(
            [
                "mine", str(target), "--batch-size", "20", "--window", "2",
                "--minsup", "4", "--workers", "2",
                "--storage", "disk", "--storage-path", str(storage_dir),
            ]
        )
        assert code == 0
        assert "frequent patterns" in capsys.readouterr().out
        assert (storage_dir / "manifest.json").exists()

    def test_mine_rejects_negative_workers(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "20", "--seed", "5"])
        capsys.readouterr()
        assert main(["mine", str(target), "--workers", "-1"]) == EXIT_USAGE_ERROR
        err = capsys.readouterr().err
        assert err.startswith("error: --workers must be non-negative")
        assert len(err.strip().splitlines()) == 1  # one-line error, no traceback

    def test_mine_rejects_negative_ingest_workers(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "20", "--seed", "5"])
        capsys.readouterr()
        code = main(["mine", str(target), "--ingest-workers", "-2"])
        assert code == EXIT_USAGE_ERROR
        err = capsys.readouterr().err
        assert err.startswith("error: --ingest-workers must be non-negative")
        assert len(err.strip().splitlines()) == 1  # one-line error, no traceback

    def test_mine_with_ingest_workers_matches_sequential(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "60", "--seed", "5"])
        capsys.readouterr()
        base_args = [
            "mine", str(target), "--batch-size", "20", "--window", "2",
            "--minsup", "4", "--format", "json",
        ]
        assert main(base_args) == 0
        sequential = capsys.readouterr().out
        assert main(base_args + ["--ingest-workers", "2"]) == 0
        assert capsys.readouterr().out == sequential

    def test_mine_ingest_workers_with_disk_storage_and_mining_workers(
        self, tmp_path, capsys
    ):
        """The fully parallel pipeline: sharded ingest feeding sharded mining."""
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "60", "--seed", "5"])
        capsys.readouterr()
        base_args = [
            "mine", str(target), "--batch-size", "20", "--window", "2",
            "--minsup", "4", "--format", "json",
        ]
        assert main(base_args) == 0
        sequential = capsys.readouterr().out
        storage_dir = tmp_path / "segments"
        code = main(
            base_args
            + [
                "--ingest-workers", "2", "--workers", "2",
                "--storage", "disk", "--storage-path", str(storage_dir),
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == sequential
        assert (storage_dir / "manifest.json").exists()


class TestGen:
    def test_list_prints_canonical_workloads(self, capsys):
        assert main(["gen", "--list"]) == 0
        output = capsys.readouterr().out
        for name in (
            "random-graph[smoke]",
            "random-graph[large]",
            "zipf-transactions[large]",
        ):
            assert name in output
        assert "units=1000000" in output

    def test_requires_workload_or_list(self, capsys):
        assert main(["gen"]) == EXIT_USAGE_ERROR

    def test_unknown_workload(self, capsys):
        assert main(["gen", "random-graph[galactic]"]) == EXIT_USAGE_ERROR
        assert "error:" in capsys.readouterr().err

    def test_rejects_nonpositive_units(self, capsys):
        code = main(["gen", "random-graph[smoke]", "--units", "0"])
        assert code == EXIT_USAGE_ERROR

    def test_validate_reports_determinism_and_parity(self, capsys):
        code = main(
            ["gen", "random-graph[smoke]", "--units", "60", "--workers", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "validated 60 of 200 units" in output
        assert "deterministic: True" in output
        assert "parallel mining parity (2 workers): True" in output

    def test_no_mine_skips_parity(self, capsys):
        code = main(
            ["gen", "zipf-transactions[smoke]", "--units", "40", "--no-mine"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "digest: " in output
        assert "parity" not in output

    def test_export_then_mine_end_to_end(self, tmp_path, capsys):
        target = tmp_path / "workload.fimi"
        code = main(
            ["gen", "random-graph[smoke]", "--units", "60",
             "--output", str(target)]
        )
        assert code == 0
        assert "wrote 60 transactions" in capsys.readouterr().out
        assert len(read_fimi(target)) == 60
        assert main(
            ["mine", str(target), "--batch-size", "20", "--window", "2",
             "--minsup", "3", "--workers", "2"]
        ) == 0

    def test_export_transactions_respects_units(self, tmp_path):
        target = tmp_path / "txn.fimi"
        code = main(
            ["gen", "zipf-transactions[smoke]", "--units", "25",
             "--output", str(target)]
        )
        assert code == 0
        assert len(read_fimi(target)) == 25


class TestMineTransport:
    @pytest.mark.parametrize("transport", ["auto", "pickle", "shm"])
    def test_mine_accepts_transport(self, transport, tmp_path, capsys):
        from repro.storage.shm import shared_memory_available

        if transport == "shm" and not shared_memory_available():
            pytest.skip("no shared memory on this host")
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "60",
              "--seed", "5"])
        capsys.readouterr()
        assert main(
            ["mine", str(target), "--batch-size", "20", "--window", "2",
             "--minsup", "4", "--workers", "2", "--transport", transport]
        ) == 0

    def test_unknown_transport_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mine", "x.fimi", "--transport", "telepathy"]
            )


class TestMineStats:
    def test_stats_flag_prints_cache_summary(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "60", "--seed", "5"])
        capsys.readouterr()
        assert main(["mine", str(target), "--batch-size", "20", "--window", "2",
                     "--minsup", "4", "--stats"]) == 0
        output = capsys.readouterr().out
        assert "cache: " in output
        assert "row_misses=" in output
        assert "frequent_misses=" in output
        # No parallel ingest happened, so no pipeline line.
        assert "pipeline: " not in output

    def test_stats_flag_with_ingest_workers_prints_pipeline_line(
        self, tmp_path, capsys
    ):
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "60", "--seed", "5"])
        capsys.readouterr()
        assert main(["mine", str(target), "--batch-size", "20", "--window", "2",
                     "--minsup", "4", "--stats", "--ingest-workers", "2",
                     "--max-inflight", "2"]) == 0
        output = capsys.readouterr().out
        assert "cache: " in output
        assert "pipeline: chunks=3" in output
        assert "max_inflight=2" in output

    def test_without_stats_flag_no_summary(self, tmp_path, capsys):
        target = tmp_path / "graph.fimi"
        main(["generate", str(target), "--kind", "graph", "--count", "40", "--seed", "5"])
        capsys.readouterr()
        assert main(["mine", str(target), "--batch-size", "20", "--window", "2",
                     "--minsup", "4"]) == 0
        assert "cache: " not in capsys.readouterr().out


class TestWatchQueryServe:
    def _generate(self, tmp_path):
        source = tmp_path / "graph.fimi"
        main(["generate", str(source), "--kind", "graph", "--count", "60", "--seed", "5"])
        return source

    def _watch(self, tmp_path, journal="journal", extra=()):
        source = self._generate(tmp_path)
        args = [
            "watch", str(source), "--batch-size", "20", "--window", "2",
            "--minsup", "4", "--journal", str(tmp_path / journal),
        ]
        return main(args + list(extra))

    def test_watch_writes_a_journal(self, tmp_path, capsys):
        assert self._watch(tmp_path) == 0
        output = capsys.readouterr().out
        assert "journalled 3 slides" in output
        journal_dir = tmp_path / "journal"
        assert (journal_dir / "journal.json").exists()
        assert (journal_dir / "journal.dat").exists()
        assert (journal_dir / "journal.log").exists()

    def test_watch_parallel_journal_byte_identical(self, tmp_path, capsys):
        assert self._watch(tmp_path, journal="seq") == 0
        assert (
            self._watch(
                tmp_path,
                journal="par",
                extra=["--ingest-workers", "2", "--workers", "2", "--max-inflight", "1"],
            )
            == 0
        )
        assert (tmp_path / "seq" / "journal.dat").read_bytes() == (
            tmp_path / "par" / "journal.dat"
        ).read_bytes()

    def test_watch_rejects_negative_workers(self, tmp_path, capsys):
        source = self._generate(tmp_path)
        capsys.readouterr()
        code = main(["watch", str(source), "--journal", str(tmp_path / "j"),
                     "--workers", "-1"])
        assert code == EXIT_USAGE_ERROR
        assert "must be non-negative" in capsys.readouterr().err

    def test_watch_missing_input(self, tmp_path, capsys):
        code = main(["watch", str(tmp_path / "nope.fimi"), "--journal",
                     str(tmp_path / "j")])
        assert code == EXIT_INPUT_ERROR

    def test_rewatching_a_journal_is_a_clean_error(self, tmp_path, capsys):
        assert self._watch(tmp_path) == 0
        capsys.readouterr()
        # A second watch restarts slide ids at 0, which the append-only
        # journal must reject — as a one-line error, not a traceback.
        code = self._watch(tmp_path)
        assert code == EXIT_USAGE_ERROR
        err = capsys.readouterr().err
        assert "cannot journal this stream" in err
        assert "Traceback" not in err

    def test_query_stats_and_topk(self, tmp_path, capsys):
        assert self._watch(tmp_path) == 0
        capsys.readouterr()
        assert main(["query", str(tmp_path / "journal"), "--query", "stats"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["slides"] == 3
        assert main(["query", str(tmp_path / "journal"), "--query", "topk", "-k", "2"]) == 0
        topk = json.loads(capsys.readouterr().out)
        assert topk["count"] == 2

    def test_query_support_history(self, tmp_path, capsys):
        assert self._watch(tmp_path) == 0
        capsys.readouterr()
        main(["query", str(tmp_path / "journal"), "--query", "topk", "-k", "1"])
        top_item = json.loads(capsys.readouterr().out)["matches"][0]["items"][0]
        assert main(["query", str(tmp_path / "journal"), "--query",
                     "support-history", "--items", top_item]) == 0
        history = json.loads(capsys.readouterr().out)
        assert len(history["history"]) == 3
        assert history["first_frequent"] is not None

    def test_query_expr_algebra(self, tmp_path, capsys):
        assert self._watch(tmp_path) == 0
        capsys.readouterr()
        main(["query", str(tmp_path / "journal"), "--query", "topk", "-k", "1"])
        legacy = json.loads(capsys.readouterr().out)
        top_item = legacy["matches"][0]["items"][0]
        expr = json.dumps({"select": {"where": {"contains": [top_item]}}})
        assert main(["query", str(tmp_path / "journal"), "--expr", expr]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == len(payload["matches"]) > 0
        assert payload["explain"]["q_error"] >= 1.0
        # top_k through the algebra reproduces the legacy canned answer.
        last = legacy["matches"][0]["slide"]
        expr = json.dumps({"top_k": {"k": 1, "where": {"slides": [last, last]}}})
        assert main(["query", str(tmp_path / "journal"), "--expr", expr]) == 0
        assert json.loads(capsys.readouterr().out)["matches"] == legacy["matches"]

    def test_query_expr_invalid_json(self, tmp_path, capsys):
        assert self._watch(tmp_path) == 0
        capsys.readouterr()
        code = main(["query", str(tmp_path / "journal"), "--expr", "{not json"])
        assert code == EXIT_USAGE_ERROR
        err = capsys.readouterr().err
        payload = json.loads(err)
        assert payload["code"] == "invalid-json"
        assert payload["exit_code"] == EXIT_USAGE_ERROR
        assert "\n" not in err.strip()

    def test_query_expr_malformed_expression(self, tmp_path, capsys):
        assert self._watch(tmp_path) == 0
        capsys.readouterr()
        expr = json.dumps({"select": {"where": {"bogus": []}}})
        code = main(["query", str(tmp_path / "journal"), "--expr", expr])
        assert code == EXIT_USAGE_ERROR
        payload = json.loads(capsys.readouterr().err)
        assert payload["code"] == "malformed-expression"
        assert payload["path"] == "$.select.where.bogus"

    def test_query_missing_journal(self, tmp_path, capsys):
        code = main(["query", str(tmp_path / "missing"), "--query", "stats"])
        assert code == EXIT_INPUT_ERROR
        assert "cannot open journal" in capsys.readouterr().err

    def test_query_items_required(self, tmp_path, capsys):
        assert self._watch(tmp_path) == 0
        capsys.readouterr()
        code = main(["query", str(tmp_path / "journal"), "--query", "super"])
        assert code == EXIT_USAGE_ERROR
        assert "needs --items" in capsys.readouterr().err

    def test_serve_missing_journal(self, tmp_path, capsys):
        code = main(["serve", str(tmp_path / "missing")])
        assert code == EXIT_INPUT_ERROR
        assert "cannot open journal" in capsys.readouterr().err

    def test_serve_answers_http_requests(self, tmp_path, capsys):
        import json as json_module
        import threading
        import urllib.request

        from repro.history.journal import open_journal
        from repro.service.api import HistoryService
        from repro.service.server import build_server

        assert self._watch(tmp_path) == 0
        # The serve handler wiring, exercised on an ephemeral port (the
        # serve_forever loop itself is covered by the service suite).
        server = build_server(
            HistoryService(open_journal(tmp_path / "journal")), port=0
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            port = server.server_address[1]
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/stats", timeout=10
            ) as response:
                assert json_module.loads(response.read())["slides"] == 3
        finally:
            server.shutdown()
            server.server_close()


class TestWatchCheckpointAndRetention:
    def _generate(self, tmp_path):
        source = tmp_path / "graph.fimi"
        main(["generate", str(source), "--kind", "graph", "--count", "200", "--seed", "5"])
        return source

    def _watch(self, tmp_path, source, journal, extra=()):
        args = [
            "watch", str(source), "--batch-size", "10", "--window", "3",
            "--minsup", "3", "--journal", str(tmp_path / journal),
        ]
        return main(args + list(extra))

    def test_crash_resume_is_byte_identical(self, tmp_path, capsys):
        source = self._generate(tmp_path)
        assert self._watch(tmp_path, source, "ref") == 0
        # A "crashed" run: only the stream prefix, sealing snapshots.
        prefix = tmp_path / "prefix.fimi"
        prefix.write_text(
            "".join(source.read_text().splitlines(keepends=True)[:70])
        )
        chk = ["--checkpoint-dir", str(tmp_path / "chk"), "--checkpoint-every", "2"]
        assert self._watch(tmp_path, prefix, "live", extra=chk) == 0
        assert "sealed 3 snapshot(s)" in capsys.readouterr().out
        # Resume over the full stream converges on the reference bytes.
        assert self._watch(tmp_path, source, "live", extra=chk + ["--resume"]) == 0
        assert "resumed from slide 5" in capsys.readouterr().out
        assert (tmp_path / "live" / "journal.dat").read_bytes() == (
            tmp_path / "ref" / "journal.dat"
        ).read_bytes()

    def test_retention_flags_bound_the_journal(self, tmp_path, capsys):
        source = self._generate(tmp_path)
        assert (
            self._watch(
                tmp_path, source, "tiered",
                extra=["--retain-warm", "5", "--retain-hot", "3",
                       "--cold-sample-every", "4"],
            )
            == 0
        )
        assert "20 records total" in capsys.readouterr().out
        archive = tmp_path / "tiered" / "archive.jsonl"
        lines = [json.loads(line) for line in archive.read_text().splitlines()]
        assert len(lines) == 15  # 20 slides - 5 warm
        assert sum(1 for line in lines if "patterns" in line) == 4

    def test_resume_requires_checkpoint_dir(self, tmp_path, capsys):
        source = self._generate(tmp_path)
        code = self._watch(tmp_path, source, "j", extra=["--resume"])
        assert code == EXIT_USAGE_ERROR
        assert "--resume needs --checkpoint-dir" in capsys.readouterr().err

    def test_resume_rejects_mismatched_geometry(self, tmp_path, capsys):
        source = self._generate(tmp_path)
        chk = ["--checkpoint-dir", str(tmp_path / "chk"), "--checkpoint-every", "2"]
        assert self._watch(tmp_path, source, "live", extra=chk) == 0
        capsys.readouterr()
        code = main([
            "watch", str(source), "--batch-size", "20", "--window", "3",
            "--minsup", "3", "--journal", str(tmp_path / "live"),
            "--resume", *chk,
        ])
        assert code == EXIT_USAGE_ERROR
        assert "resume with the same flags" in capsys.readouterr().err

    def test_bad_retention_flag_is_a_usage_error(self, tmp_path, capsys):
        source = self._generate(tmp_path)
        code = self._watch(tmp_path, source, "j", extra=["--checkpoint-every", "0"])
        assert code == EXIT_USAGE_ERROR
        assert "--checkpoint-every" in capsys.readouterr().err

    def test_unwritable_journal_is_one_json_error_line(self, tmp_path, capsys):
        source = self._generate(tmp_path)
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go")
        code = self._watch(tmp_path, source, "blocker/journal")
        assert code == EXIT_INPUT_ERROR
        err_lines = capsys.readouterr().err.strip().splitlines()
        assert len(err_lines) == 1
        payload = json.loads(err_lines[0])
        assert "cannot open journal" in payload["error"]
        assert payload["exit_code"] == EXIT_INPUT_ERROR

    def test_unwritable_checkpoint_dir_is_one_json_error_line(self, tmp_path, capsys):
        source = self._generate(tmp_path)
        blocker = tmp_path / "blocker"
        blocker.write_text("x")
        code = self._watch(
            tmp_path, source, "j",
            extra=["--checkpoint-dir", str(blocker / "chk")],
        )
        assert code == EXIT_INPUT_ERROR
        payload = json.loads(capsys.readouterr().err.strip())
        assert "cannot open checkpoint dir" in payload["error"]

    def test_serve_error_is_one_json_error_line(self, tmp_path, capsys):
        code = main(["serve", str(tmp_path / "missing")])
        assert code == EXIT_INPUT_ERROR
        payload = json.loads(capsys.readouterr().err.strip())
        assert "cannot open journal" in payload["error"]
        assert payload["exit_code"] == EXIT_INPUT_ERROR


class TestSupervise:
    def test_supervise_needs_a_child(self, capsys):
        assert main(["supervise"]) == EXIT_USAGE_ERROR
        assert "needs a child command" in capsys.readouterr().err

    def test_supervise_only_runs_watch_or_serve(self, capsys):
        assert main(["supervise", "--", "mine", "x"]) == EXIT_USAGE_ERROR
        assert "watch/serve" in capsys.readouterr().err

    def test_supervise_validates_the_policy(self, capsys):
        code = main(["supervise", "--max-restarts", "-1", "--", "watch", "x"])
        assert code == EXIT_USAGE_ERROR
        assert "max_restarts" in capsys.readouterr().err

    def test_supervise_runs_a_real_child_to_completion(self, tmp_path, capsys):
        source = tmp_path / "graph.fimi"
        main(["generate", str(source), "--kind", "graph", "--count", "60", "--seed", "5"])
        capsys.readouterr()
        code = main([
            "supervise", "--max-restarts", "0", "--",
            "watch", str(source), "--batch-size", "20", "--window", "2",
            "--minsup", "4", "--journal", str(tmp_path / "journal"),
        ])
        assert code == 0
        events = [
            json.loads(line)
            for line in capsys.readouterr().err.strip().splitlines()
        ]
        assert [event["event"] for event in events] == ["start", "exit"]
        assert (tmp_path / "journal" / "journal.dat").exists()

    def test_supervise_propagates_a_failing_child(self, tmp_path, capsys):
        # A watch over a missing input fails fast with exit 3; a budget of
        # one restart retries once, then propagates the child's code.
        code = main([
            "supervise", "--max-restarts", "1", "--backoff", "0.01", "--",
            "watch", str(tmp_path / "nope.fimi"),
            "--journal", str(tmp_path / "journal"),
        ])
        assert code == EXIT_INPUT_ERROR
        events = [
            json.loads(line)
            for line in capsys.readouterr().err.strip().splitlines()
        ]
        assert [event["event"] for event in events] == [
            "start", "exit", "restart", "start", "exit", "budget-exhausted",
        ]


class TestMineInputErrors:
    def test_missing_input_file_exits_with_stable_code(self, tmp_path, capsys):
        missing = tmp_path / "nope.fimi"
        code = main(["mine", str(missing)])
        assert code == EXIT_INPUT_ERROR
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read input file:")
        assert len(err.strip().splitlines()) == 1  # one-line error, no traceback

    def test_corrupt_binary_input_exits_with_stable_code(self, tmp_path, capsys):
        corrupt = tmp_path / "corrupt.fimi"
        corrupt.write_bytes(b"\xff\xfe\x00DSEG\x80garbage")
        code = main(["mine", str(corrupt)])
        assert code == EXIT_INPUT_ERROR
        assert "error: cannot read input file:" in capsys.readouterr().err

    def test_directory_as_input_exits_with_stable_code(self, tmp_path, capsys):
        code = main(["mine", str(tmp_path)])
        assert code == EXIT_INPUT_ERROR
        assert "error: cannot read input file:" in capsys.readouterr().err


class TestBench:
    def test_bench_e1_table(self, capsys):
        assert main(["bench", "e1", "--scale", "tiny"]) == 0
        output = capsys.readouterr().out
        assert "E1-accuracy" in output
        assert "all_collections_identical: True" in output

    def test_bench_json_output(self, capsys):
        assert main(["bench", "e4", "--scale", "tiny", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "E4-minsup-sweep"
        assert payload["rows"]

    def test_bench_e10_runs(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "e10", "--scale", "tiny"]) == 0
        output = capsys.readouterr().out
        assert "E10-journal-history" in output
        assert "journal_identical: True" in output
        assert (tmp_path / "BENCH_e10.json").exists()

    def test_bench_baseline_pass_and_fail(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "e4", "--scale", "tiny", "--json"]) == 0
        outcome = json.loads(capsys.readouterr().out)
        baseline = tmp_path / "BENCH_e4.json"
        baseline.write_text(json.dumps(outcome), encoding="utf-8")
        # Same workload against its own outcome: within budget, and the
        # check's verdict stays off stdout so --json output remains parseable.
        assert main(["bench", "e4", "--scale", "tiny", "--json",
                     "--baseline", str(baseline)]) == 0
        captured = capsys.readouterr()
        assert "within budget" in captured.err
        json.loads(captured.out)
        # A tampered baseline (different minsup identity) must fail.
        outcome["workload"] = "something-else"
        baseline.write_text(json.dumps(outcome), encoding="utf-8")
        assert main(["bench", "e4", "--scale", "tiny", "--json",
                     "--baseline", str(baseline)]) == 1
        assert "regression(s)" in capsys.readouterr().err

    def test_bench_baseline_missing_file(self, capsys):
        code = main(["bench", "e4", "--scale", "tiny", "--json",
                     "--baseline", "/nonexistent/BENCH.json"])
        assert code == EXIT_INPUT_ERROR
        assert "cannot read baseline" in capsys.readouterr().err


class TestMineOutputFormats:
    def _generate(self, tmp_path):
        source = tmp_path / "graph.fimi"
        main(["generate", str(source), "--kind", "graph", "--count", "60", "--seed", "5"])
        return source

    def test_json_format(self, tmp_path, capsys):
        source = self._generate(tmp_path)
        capsys.readouterr()
        assert main(["mine", str(source), "--batch-size", "20", "--window", "2",
                     "--minsup", "4", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list)
        assert all("support" in record for record in payload)

    def test_csv_format_to_file(self, tmp_path, capsys):
        source = self._generate(tmp_path)
        target = tmp_path / "patterns.csv"
        capsys.readouterr()
        assert main(["mine", str(source), "--batch-size", "20", "--window", "2",
                     "--minsup", "4", "--format", "csv", "--output", str(target)]) == 0
        assert "wrote" in capsys.readouterr().out
        lines = target.read_text(encoding="utf-8").strip().splitlines()
        assert lines[0].startswith("items,")
        assert len(lines) > 1


class TestFaultsFlag:
    def _generate(self, tmp_path):
        source = tmp_path / "graph.fimi"
        main(["generate", str(source), "--kind", "graph", "--count", "60", "--seed", "5"])
        return source

    @pytest.mark.parametrize("command", ["mine", "watch"])
    def test_invalid_plan_is_a_usage_error(self, command, tmp_path, capsys):
        source = self._generate(tmp_path)
        capsys.readouterr()
        args = [command, str(source), "--faults", "no.such.site@1"]
        if command == "watch":
            args += ["--journal", str(tmp_path / "journal")]
        assert main(args) == EXIT_USAGE_ERROR
        assert "invalid --faults plan" in capsys.readouterr().err

    def test_mine_stats_reports_clean_resilience(self, tmp_path, capsys):
        source = self._generate(tmp_path)
        capsys.readouterr()
        assert main(["mine", str(source), "--batch-size", "20", "--window", "2",
                     "--minsup", "4", "--stats"]) == 0
        assert "resilience: clean" in capsys.readouterr().out

    def test_mine_recovers_from_injected_crash_and_reports_it(
        self, tmp_path, capsys
    ):
        source = self._generate(tmp_path)
        capsys.readouterr()
        # Every fresh worker re-crashes at its first encode (per-process
        # hit counters), so the pool respawns through its budget and then
        # degrades to in-process, where the crash is retried inline.
        assert main(["mine", str(source), "--batch-size", "20", "--window", "2",
                     "--minsup", "4", "--stats", "--ingest-workers", "2",
                     "--faults", "ingest.encode@1:crash"]) == 0
        captured = capsys.readouterr()
        assert "respawn=" in captured.out
        assert "retry=1" in captured.out
        assert "resilience: clean" not in captured.out
        assert '"event": "resilience"' not in captured.err  # mine has no stream

    def test_watch_under_faults_is_byte_identical_and_narrated(
        self, tmp_path, capsys
    ):
        import os

        from repro import faults

        source = self._generate(tmp_path)
        base = ["watch", str(source), "--batch-size", "20", "--window", "2",
                "--minsup", "4", "--journal"]
        assert main(base + [str(tmp_path / "clean")]) == 0
        capsys.readouterr()
        assert main(base + [str(tmp_path / "faulted"),
                            "--faults", "journal.write@2"]) == 0
        captured = capsys.readouterr()
        assert "resilience: retry=1" in captured.out
        events = [json.loads(line) for line in captured.err.splitlines() if line]
        assert any(
            event["event"] == "resilience" and event["kind"] == "retry"
            and event["site"] == "journal.write"
            for event in events
        )
        assert (tmp_path / "faulted" / "journal.dat").read_bytes() == (
            tmp_path / "clean" / "journal.dat"
        ).read_bytes()
        # The plan was uninstalled on the way out: nothing leaks into the
        # environment of later runs.
        assert faults.ENV_VAR not in os.environ
