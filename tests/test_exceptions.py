"""The exception hierarchy allows catching everything via ReproError."""

import pytest

from repro import exceptions


def test_all_exceptions_derive_from_repro_error():
    for name in dir(exceptions):
        obj = getattr(exceptions, name)
        if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
            assert issubclass(obj, exceptions.ReproError), name


@pytest.mark.parametrize(
    "child, parent",
    [
        (exceptions.EdgeRegistryError, exceptions.GraphError),
        (exceptions.WindowError, exceptions.StreamError),
        (exceptions.DSMatrixError, exceptions.StorageError),
        (exceptions.DSTableError, exceptions.StorageError),
        (exceptions.DSTreeError, exceptions.StorageError),
        (exceptions.InvalidSupportError, exceptions.MiningError),
        (exceptions.ParseError, exceptions.LinkedDataError),
    ],
)
def test_specific_hierarchy(child, parent):
    assert issubclass(child, parent)


def test_catching_base_class_works():
    from repro.graph.edge import Edge

    with pytest.raises(exceptions.ReproError):
        Edge("v1", "v1")
