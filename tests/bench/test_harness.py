"""Unit tests for repro.bench.harness."""

import pytest

from repro.bench.harness import (
    build_edge_workload,
    build_itemset_workload,
    prepare_window,
    run_baseline_miner,
    run_dsmatrix_algorithm,
)
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def small_workload():
    return build_edge_workload(
        name="unit-test-workload",
        num_vertices=10,
        num_snapshots=80,
        batch_size=20,
        window_size=3,
        seed=7,
    )


@pytest.fixture(scope="module")
def small_matrix(small_workload):
    return prepare_window(small_workload)


class TestWorkloadBuilders:
    def test_edge_workload_shape(self, small_workload):
        assert len(small_workload.transactions) == 80
        assert small_workload.registry is not None
        assert len(small_workload.batches()) == 4

    def test_itemset_workload_ibm(self):
        workload = build_itemset_workload(
            kind="ibm", num_transactions=50, batch_size=10, window_size=2, seed=3
        )
        assert len(workload.transactions) == 50
        assert workload.registry is None

    def test_itemset_workload_connect4(self):
        workload = build_itemset_workload(
            kind="connect4", num_transactions=20, batch_size=10, window_size=2, seed=3
        )
        assert all(len(t) == 43 for t in workload.transactions)

    def test_unknown_itemset_kind(self):
        with pytest.raises(DatasetError):
            build_itemset_workload(kind="nope")

    def test_repr(self, small_workload):
        assert "unit-test-workload" in repr(small_workload)


class TestPrepareWindow:
    def test_window_holds_last_batches(self, small_workload, small_matrix):
        assert small_matrix.num_batches == 3
        assert small_matrix.num_columns == 60

    def test_window_can_persist(self, small_workload, tmp_path):
        matrix = prepare_window(small_workload, path=tmp_path / "w.dsm")
        assert matrix.disk_size_bytes() > 0


class TestRuns:
    def test_dsmatrix_run_result_fields(self, small_workload, small_matrix):
        result = run_dsmatrix_algorithm(
            "vertical", small_matrix, small_workload, minsup=5, keep_patterns=True
        )
        assert result.algorithm == "vertical"
        assert result.runtime_seconds >= 0
        assert result.pattern_count == len(result.patterns)
        row = result.as_row()
        assert row["patterns"] == result.pattern_count
        assert "runtime_s" in row

    def test_connected_run_smaller_or_equal(self, small_workload, small_matrix):
        everything = run_dsmatrix_algorithm(
            "vertical", small_matrix, small_workload, minsup=5
        )
        connected = run_dsmatrix_algorithm(
            "vertical", small_matrix, small_workload, minsup=5, connected=True
        )
        assert connected.pattern_count <= everything.pattern_count

    def test_direct_and_postprocessed_agree(self, small_workload, small_matrix):
        direct = run_dsmatrix_algorithm(
            "vertical_direct", small_matrix, small_workload, minsup=5, keep_patterns=True
        )
        post = run_dsmatrix_algorithm(
            "vertical",
            small_matrix,
            small_workload,
            minsup=5,
            connected=True,
            keep_patterns=True,
        )
        assert direct.patterns == post.patterns

    def test_connected_requires_registry(self, small_matrix, small_workload):
        itemset_workload = build_itemset_workload(
            kind="ibm", num_transactions=20, batch_size=10, window_size=2, seed=1
        )
        matrix = prepare_window(itemset_workload)
        with pytest.raises(DatasetError):
            run_dsmatrix_algorithm(
                "vertical", matrix, itemset_workload, minsup=2, connected=True
            )

    def test_baseline_runs(self, small_workload):
        for name in ("dstree", "dstable"):
            result = run_baseline_miner(name, small_workload, minsup=5, keep_patterns=True)
            assert result.algorithm == name
            assert result.pattern_count == len(result.patterns)

    def test_unknown_baseline(self, small_workload):
        with pytest.raises(DatasetError):
            run_baseline_miner("bogus", small_workload, minsup=5)

    def test_baselines_agree_with_dsmatrix(self, small_workload, small_matrix):
        reference = run_dsmatrix_algorithm(
            "vertical", small_matrix, small_workload, minsup=5, keep_patterns=True
        ).patterns
        for name in ("dstree", "dstable"):
            result = run_baseline_miner(name, small_workload, minsup=5, keep_patterns=True)
            assert result.patterns == reference
