"""Unit tests for the benchmark regression gate."""

import json

import pytest

from repro.bench.regression import (
    compare_directories,
    compare_outcomes,
    main,
    row_identity,
)


def outcome(runtime=0.5, identical=True, patterns=10):
    return {
        "experiment": "E7-strong-scaling",
        "workload": "random-graph[tiny]",
        "minsup": 7,
        "parallel_identical": identical,
        "rows": [
            {
                "algorithm": "vertical",
                "workers": 1,
                "runtime_s": runtime,
                "speedup_vs_1": 1.0,
                "patterns": patterns,
            }
        ],
    }


class TestCompareOutcomes:
    def test_identical_outcomes_pass(self):
        assert compare_outcomes(outcome(), outcome()) == []

    def test_faster_run_passes(self):
        assert compare_outcomes(outcome(runtime=1.0), outcome(runtime=0.2)) == []

    def test_regression_beyond_threshold_fails(self):
        failures = compare_outcomes(outcome(runtime=1.0), outcome(runtime=1.3))
        assert len(failures) == 1
        assert "runtime_s" in failures[0]

    def test_regression_within_threshold_passes(self):
        assert compare_outcomes(outcome(runtime=1.0), outcome(runtime=1.2)) == []

    def test_noise_floor_shields_micro_rows(self):
        # 4x slower, but both sides sit under the 0.25s noise floor.
        assert compare_outcomes(outcome(runtime=0.05), outcome(runtime=0.2)) == []

    def test_correctness_flag_regression_fails(self):
        failures = compare_outcomes(outcome(), outcome(identical=False))
        assert any("parallel_identical" in failure for failure in failures)

    def test_changed_row_identity_fails_both_ways(self):
        failures = compare_outcomes(outcome(), outcome(patterns=11))
        assert any("no matching current row" in failure for failure in failures)
        assert any("no baseline counterpart" in failure for failure in failures)

    def test_changed_top_level_field_fails(self):
        changed = outcome()
        changed["minsup"] = 9
        failures = compare_outcomes(outcome(), changed)
        assert any("minsup" in failure for failure in failures)

    def test_volatile_fields_are_not_identity(self):
        row = outcome()["rows"][0]
        faster = dict(row, runtime_s=0.1, speedup_vs_1=5.0)
        assert row_identity(row) == row_identity(faster)


class TestCompareDirectories:
    def write(self, directory, payload):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "BENCH_e7.json").write_text(json.dumps(payload), encoding="utf-8")

    def test_missing_baselines_fail(self, tmp_path):
        (tmp_path / "baseline").mkdir()
        failures = compare_directories(tmp_path / "baseline", tmp_path / "current")
        assert failures and "no BENCH_*.json baselines" in failures[0]

    def test_missing_current_outcome_fails(self, tmp_path):
        self.write(tmp_path / "baseline", outcome())
        (tmp_path / "current").mkdir()
        failures = compare_directories(tmp_path / "baseline", tmp_path / "current")
        assert failures and "no current outcome" in failures[0]

    def test_matching_directories_pass(self, tmp_path):
        self.write(tmp_path / "baseline", outcome())
        self.write(tmp_path / "current", outcome(runtime=0.55))
        assert compare_directories(tmp_path / "baseline", tmp_path / "current") == []

    @pytest.mark.parametrize("runtime,expected", [(0.55, 0), (5.0, 1)])
    def test_main_exit_codes(self, tmp_path, capsys, runtime, expected):
        self.write(tmp_path / "baseline", outcome())
        self.write(tmp_path / "current", outcome(runtime=runtime))
        code = main(
            [
                "--baseline-dir",
                str(tmp_path / "baseline"),
                "--current-dir",
                str(tmp_path / "current"),
            ]
        )
        assert code == expected

    def test_committed_baselines_pass_against_themselves(self):
        from pathlib import Path

        baselines = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"
        assert compare_directories(baselines, baselines) == []
