"""Unit tests for repro.bench.metrics."""

import time

from repro.bench.metrics import MemoryMeter, Timer, deep_sizeof


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005

    def test_zero_before_use(self):
        assert Timer().elapsed == 0.0


class TestMemoryMeter:
    def test_measures_allocations(self):
        with MemoryMeter() as meter:
            _payload = [list(range(1000)) for _ in range(50)]
        assert meter.peak_bytes > 10_000

    def test_nested_meters_do_not_stop_outer_tracing(self):
        with MemoryMeter() as outer:
            with MemoryMeter() as inner:
                _x = list(range(1000))
            _y = list(range(1000))
        assert inner.peak_bytes > 0
        assert outer.peak_bytes > 0


class TestDeepSizeof:
    def test_larger_containers_report_more(self):
        small = deep_sizeof([1, 2, 3])
        large = deep_sizeof(list(range(1000)))
        assert large > small

    def test_handles_cycles(self):
        a = {"name": "a"}
        a["self"] = a
        assert deep_sizeof(a) > 0

    def test_follows_object_attributes(self):
        class Holder:
            def __init__(self):
                self.payload = list(range(500))

        assert deep_sizeof(Holder()) > deep_sizeof(object())

    def test_follows_slots(self):
        from repro.storage.bitvector import BitVector

        assert deep_sizeof(BitVector.ones(1000)) > 0

    def test_shared_objects_counted_once(self):
        shared = list(range(1000))
        assert deep_sizeof([shared, shared]) < 2 * deep_sizeof(shared) + 200
