"""Unit tests for repro.bench.report."""

from repro.bench.report import format_table, rows_to_markdown

ROWS = [
    {"algorithm": "vertical", "runtime_s": 0.12345, "patterns": 42},
    {"algorithm": "vertical_direct", "runtime_s": 0.1, "patterns": 40},
]


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = format_table(ROWS)
        assert "algorithm" in text
        assert "vertical_direct" in text
        assert "0.1235" in text  # floats rendered with 4 decimals

    def test_title_prepended(self):
        assert format_table(ROWS, title="E3").splitlines()[0] == "E3"

    def test_column_selection_and_order(self):
        text = format_table(ROWS, columns=["patterns", "algorithm"])
        header = text.splitlines()[0]
        assert header.index("patterns") < header.index("algorithm")

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])
        assert "(no rows)" in format_table([], title="empty")

    def test_missing_cells_rendered_blank(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert text.count("\n") == 3


class TestMarkdown:
    def test_structure(self):
        text = rows_to_markdown(ROWS)
        lines = text.splitlines()
        assert lines[0].startswith("| algorithm")
        assert set(lines[1].replace("|", "")) <= {"-"}
        assert len(lines) == 2 + len(ROWS)

    def test_empty(self):
        assert rows_to_markdown([]) == "(no rows)"
