"""Unit tests for the experiment drivers (run at tiny scale)."""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    experiment_accuracy,
    experiment_memory,
    experiment_minsup_sweep,
    experiment_runtime_fig2,
    experiment_scalability,
    experiment_storage_backends,
    experiment_transport_scaling,
    scale_parameters,
)
from repro.exceptions import DatasetError


class TestScaleParameters:
    def test_known_scales(self):
        for scale in ("tiny", "small", "paper"):
            params = scale_parameters(scale)
            assert params["window_size"] == 5
            assert params["batch_size"] > 0

    def test_unknown_scale(self):
        with pytest.raises(DatasetError):
            scale_parameters("huge")

    def test_registry_contains_all_experiments(self):
        assert set(EXPERIMENTS) == {
            "e1",
            "e2",
            "e3",
            "e4",
            "e5",
            "e6",
            "e7",
            "e8",
            "e9",
            "e10",
            "e11",
            "e12",
            "e13",
            "e14",
            "e15",
        }


class TestExperimentDrivers:
    def test_e1_accuracy(self):
        outcome = experiment_accuracy(scale="tiny", seed=11)
        assert outcome["all_collections_identical"] is True
        assert outcome["connected_results_identical"] is True
        assert len(outcome["rows"]) == 8

    def test_e2_memory_ranking(self):
        outcome = experiment_memory(scale="tiny", seed=11)
        results = outcome["results"]
        # The DSTree baseline keeps the global tree plus conditional FP-trees in
        # memory; the vertical miners keep only bit vectors.
        assert (
            results["dstree"]["max_fptree_nodes"]
            >= results["vertical"]["max_fptree_nodes"]
        )
        assert results["vertical"]["max_concurrent_fptrees"] == 0
        assert results["fptree_multi"]["max_concurrent_fptrees"] >= 1

    def test_e3_runtime_rows(self):
        outcome = experiment_runtime_fig2(scale="tiny", seeds=(11,), include_tree_algorithms=False)
        algorithms = {row["algorithm"] for row in outcome["rows"]}
        assert algorithms == {"vertical", "vertical_direct"}
        assert all(row["runtime_s"] >= 0 for row in outcome["rows"])

    def test_e4_minsup_sweep_monotone_patterns(self):
        outcome = experiment_minsup_sweep(
            scale="tiny", fractions=(0.05, 0.2), algorithms=("vertical",), seed=11
        )
        rows = outcome["rows"]
        assert rows[0]["minsup"] < rows[-1]["minsup"]
        # Higher minsup can never produce more patterns.
        assert rows[0]["patterns"] >= rows[-1]["patterns"]

    def test_e5_scalability_rows(self):
        outcome = experiment_scalability(
            scale="tiny", batch_counts=(2, 4), algorithms=("vertical",), seed=11
        )
        assert len(outcome["rows"]) == 2
        assert all(row["total_runtime_s"] >= 0 for row in outcome["rows"])

    def test_e11_transport_scaling(self):
        outcome = experiment_transport_scaling(
            scale="tiny",
            worker_counts=(1, 2),
            ingest_worker_counts=(0, 2),
            max_inflight_values=(1,),
            output_path=None,
        )
        # Every scaling, ablation and parity cell mined the same answer.
        assert outcome["parallel_identical"] is True
        assert outcome["workload"] == "random-graph[smoke]"
        phases = {row["phase"] for row in outcome["rows"]}
        assert phases == {"ingest", "scaling", "ablation", "pool", "parity"}
        pool_rows = [r for r in outcome["rows"] if r["phase"] == "pool"]
        assert [r["call"] for r in pool_rows] == ["first", "repeat"]
        # One miner served both pool calls: at most one executor spawn.
        assert outcome["pool_spawns"] <= 1
        scaling_workers = [
            r["workers"] for r in outcome["rows"] if r["phase"] == "scaling"
        ]
        assert scaling_workers == [0, 1, 2]

    def test_e11_unknown_scale(self):
        with pytest.raises(DatasetError):
            experiment_transport_scaling(scale="huge", output_path=None)

    def test_e6_storage_backends(self):
        outcome = experiment_storage_backends(
            scale="tiny", algorithms=("vertical",), seed=11
        )
        assert outcome["backends_identical"] is True
        by_backend = {row["backend"]: row for row in outcome["rows"]}
        assert set(by_backend) == {"memory", "disk", "single"}
        assert by_backend["disk"]["full_rewrites"] == 0
        assert by_backend["single"]["full_rewrites"] > 0
