"""Unit tests for the ingest planner: deterministic batch-aligned chunking."""

import pytest

from repro.exceptions import IngestError
from repro.ingest import IngestPlanner
from repro.stream.batch import Batch


class TestPlanUnits:
    def test_batches_are_aligned_and_ordered(self):
        planner = IngestPlanner(batch_size=3)
        chunks = planner.plan_units(list(range(8)))
        assert [chunk.chunk_id for chunk in chunks] == [0, 1, 2]
        assert [chunk.first_batch_index for chunk in chunks] == [0, 1, 2]
        assert [chunk.batches for chunk in chunks] == [
            ((0, 1, 2),),
            ((3, 4, 5),),
            ((6, 7),),
        ]

    def test_chunk_batches_groups_whole_batches(self):
        planner = IngestPlanner(batch_size=2, chunk_batches=2)
        chunks = planner.plan_units(list(range(10)))
        assert [chunk.num_batches for chunk in chunks] == [2, 2, 1]
        assert [chunk.first_batch_index for chunk in chunks] == [0, 2, 4]
        assert chunks[1].batches == ((4, 5), (6, 7))

    def test_drop_last_discards_partial_batch(self):
        planner = IngestPlanner(batch_size=3)
        chunks = planner.plan_units(list(range(8)), drop_last=True)
        assert [chunk.batches for chunk in chunks] == [((0, 1, 2),), ((3, 4, 5),)]

    def test_empty_stream_plans_no_chunks(self):
        assert IngestPlanner(batch_size=4).plan_units([]) == []

    def test_plan_is_deterministic(self):
        planner = IngestPlanner(batch_size=5, chunk_batches=3)
        units = [f"t{i}" for i in range(57)]
        assert planner.plan_units(units) == planner.plan_units(units)

    def test_num_units_counts_all_batches(self):
        chunks = IngestPlanner(batch_size=4, chunk_batches=2).plan_units(range(11))
        assert sum(chunk.num_units for chunk in chunks) == 11


class TestPlanBatches:
    def test_existing_boundaries_are_preserved(self):
        batches = [Batch([("a",)] * 4), Batch([("b",)] * 2)]
        chunks = IngestPlanner(batch_size=999).plan_batches(batches)
        assert [len(batch) for chunk in chunks for batch in chunk.batches] == [4, 2]

    def test_non_batch_input_rejected(self):
        with pytest.raises(IngestError):
            IngestPlanner(batch_size=1).plan_batches([("a", "b")])  # type: ignore[list-item]


class TestValidation:
    @pytest.mark.parametrize("batch_size", [0, -1])
    def test_non_positive_batch_size_rejected(self, batch_size):
        with pytest.raises(IngestError):
            IngestPlanner(batch_size=batch_size)

    @pytest.mark.parametrize("chunk_batches", [0, -2])
    def test_non_positive_chunk_batches_rejected(self, chunk_batches):
        with pytest.raises(IngestError):
            IngestPlanner(batch_size=1, chunk_batches=chunk_batches)
