"""Unit tests for the worker encoding step and the single-writer coordinator.

The registry-merge protocol (DESIGN.md §5) is pinned down here at the
component level: provisional symbols, first-occurrence merge order,
stream-order commit enforcement, and the byte-identity of payload commits.
"""

import pytest

from repro.exceptions import DSMatrixError, EdgeRegistryError, IngestError
from repro.graph.edge import Edge
from repro.graph.edge_registry import EdgeRegistry
from repro.graph.graph import GraphSnapshot
from repro.ingest import (
    ChunkOutcome,
    IngestChunkTask,
    SegmentDraft,
    WindowCoordinator,
    encode_chunk,
    is_provisional,
    provisional_symbol,
)
from repro.storage.backend import MemoryWindowStore
from repro.storage.segments import Segment
from repro.stream.batch import Batch


def snapshot(*pairs):
    return GraphSnapshot([Edge(u, v) for u, v in pairs])


class TestEncodeChunk:
    def test_transactions_chunk_builds_segment_rows(self):
        task = IngestChunkTask(
            chunk_id=0,
            kind="transactions",
            base_segment_id=5,
            batches=((("a", "b"), ("b",)), (("c",),)),
        )
        outcome = encode_chunk(task)
        assert [draft.segment_id for draft in outcome.drafts] == [5, 6]
        first, second = outcome.drafts
        assert first.rows == {"a": 0b01, "b": 0b11}
        assert second.rows == {"c": 0b1}
        # Final rows ship their exact serialisation for verbatim persistence.
        assert first.payload == Segment(5, 2, first.rows).to_bytes()
        assert outcome.new_edges == ()

    def test_duplicate_items_collapse_like_batch_normalisation(self):
        task = IngestChunkTask(
            chunk_id=0,
            kind="transactions",
            base_segment_id=0,
            batches=((("b", "a", "b"),),),
        )
        rows = encode_chunk(task).drafts[0].rows
        assert rows == {"a": 0b1, "b": 0b1}

    def test_known_edges_use_registry_symbols(self):
        registry = EdgeRegistry()
        known = Edge("u", "v")
        registry.register(known)
        task = IngestChunkTask(
            chunk_id=0,
            kind="snapshots",
            base_segment_id=0,
            batches=((GraphSnapshot([known]),),),
            registry=registry,
        )
        outcome = encode_chunk(task)
        assert outcome.drafts[0].rows == {"a": 0b1}
        assert outcome.new_edges == ()

    def test_unseen_edges_become_provisional_in_first_occurrence_order(self):
        registry = EdgeRegistry()
        task = IngestChunkTask(
            chunk_id=0,
            kind="snapshots",
            base_segment_id=0,
            batches=(
                (snapshot(("x", "y")), snapshot(("y", "z"), ("x", "y"))),
            ),
            registry=registry,
        )
        outcome = encode_chunk(task)
        assert outcome.new_edges == (Edge("x", "y"), Edge("y", "z"))
        rows = outcome.drafts[0].rows
        assert rows[provisional_symbol(0)] == 0b11  # x-y in both snapshots
        assert rows[provisional_symbol(1)] == 0b10
        assert outcome.drafts[0].payload is None  # not final yet
        assert all(is_provisional(item) for item in rows)
        assert len(registry) == 0  # the snapshot registry is never mutated

    def test_register_new_false_raises_in_worker(self):
        task = IngestChunkTask(
            chunk_id=0,
            kind="snapshots",
            base_segment_id=0,
            batches=((snapshot(("x", "y")),),),
            registry=EdgeRegistry(),
            register_new_edges=False,
        )
        with pytest.raises(EdgeRegistryError):
            encode_chunk(task)

    def test_snapshot_chunk_without_registry_rejected(self):
        task = IngestChunkTask(
            chunk_id=0,
            kind="snapshots",
            base_segment_id=0,
            batches=((snapshot(("x", "y")),),),
        )
        with pytest.raises(IngestError):
            encode_chunk(task)

    def test_unknown_chunk_kind_rejected(self):
        task = IngestChunkTask(
            chunk_id=0, kind="bogus", base_segment_id=0, batches=()
        )
        with pytest.raises(IngestError):
            encode_chunk(task)


class TestWindowCoordinator:
    def outcome(self, chunk_id, segment_id, rows, new_edges=(), payload=None):
        return ChunkOutcome(
            chunk_id=chunk_id,
            drafts=(
                SegmentDraft(
                    segment_id=segment_id,
                    num_columns=2,
                    rows=rows,
                    payload=payload,
                ),
            ),
            new_edges=new_edges,
        )

    def test_merge_reproduces_sequential_symbol_assignment(self):
        registry = EdgeRegistry()
        store = MemoryWindowStore(window_size=4)
        coordinator = WindowCoordinator(store, registry=registry)
        # Chunk 0 discovers u-v; chunk 1 independently discovers u-v and w-x.
        coordinator.commit(
            self.outcome(0, 0, {provisional_symbol(0): 0b01}, (Edge("u", "v"),))
        )
        coordinator.commit(
            self.outcome(
                1,
                1,
                {provisional_symbol(0): 0b10, provisional_symbol(1): 0b11},
                (Edge("u", "v"), Edge("w", "x")),
            )
        )
        assert registry.items() == ["a", "b"]
        assert registry.edge_for("a") == Edge("u", "v")
        assert registry.edge_for("b") == Edge("w", "x")
        assert coordinator.edges_registered == 2
        assert store.row("a").bits == 0b1001  # remapped into both segments
        assert store.row("b").bits == 0b1100

    def test_out_of_order_commit_rejected(self):
        coordinator = WindowCoordinator(MemoryWindowStore(window_size=2))
        with pytest.raises(IngestError):
            coordinator.commit(self.outcome(1, 0, {"a": 0b1}))

    def test_new_edges_without_registry_rejected(self):
        coordinator = WindowCoordinator(MemoryWindowStore(window_size=2))
        with pytest.raises(IngestError):
            coordinator.commit(
                self.outcome(0, 0, {provisional_symbol(0): 0b1}, (Edge("u", "v"),))
            )

    def test_unresolved_provisional_rows_rejected(self):
        coordinator = WindowCoordinator(
            MemoryWindowStore(window_size=2), registry=EdgeRegistry()
        )
        # Rows reference provisional #1 but only #0 is declared new.
        with pytest.raises(IngestError):
            coordinator.commit(
                self.outcome(0, 0, {provisional_symbol(1): 0b1}, (Edge("u", "v"),))
            )

    def test_register_new_false_rejects_unknown_edges_at_merge(self):
        coordinator = WindowCoordinator(
            MemoryWindowStore(window_size=2),
            registry=EdgeRegistry(),
            register_new_edges=False,
        )
        with pytest.raises(EdgeRegistryError):
            coordinator.commit(
                self.outcome(0, 0, {provisional_symbol(0): 0b1}, (Edge("u", "v"),))
            )

    def test_counters_track_commits(self):
        store = MemoryWindowStore(window_size=1)
        coordinator = WindowCoordinator(store)
        coordinator.commit(self.outcome(0, 0, {"a": 0b11}))
        coordinator.commit(self.outcome(1, 1, {"b": 0b01}))
        assert coordinator.batches_committed == 2
        assert coordinator.columns_committed == 4
        assert coordinator.columns_evicted == 2  # window of 1 batch slid once
        assert store.num_columns == 2


class TestAppendSegment:
    def test_out_of_order_segment_id_rejected(self):
        store = MemoryWindowStore(window_size=2)
        with pytest.raises(DSMatrixError):
            store.append_segment(Segment(3, 1, {"a": 0b1}))

    def test_payload_commit_is_byte_identical_to_sequential(self, tmp_path):
        from repro.storage.backend import DiskWindowStore

        batch = Batch([("a", "b"), ("b",), ("a",)])
        sequential = DiskWindowStore(2, path=tmp_path / "seq")
        sequential.append_batch(batch)
        segment = Segment.from_batch(batch, segment_id=0)
        parallel = DiskWindowStore(2, path=tmp_path / "par")
        parallel.append_segment(segment, payload=segment.to_bytes())
        assert (tmp_path / "seq" / "seg-00000000.dsg").read_bytes() == (
            tmp_path / "par" / "seg-00000000.dsg"
        ).read_bytes()
