"""Parity suite: parallel ingestion equals sequential appends exactly.

The acceptance bar of DESIGN.md §5: for every ingest-worker count the
committed window must be *indistinguishable* from the sequential append
path — identical item frequencies and batch boundaries on both storage
backends, byte-identical segment files on disk, identical registry symbol
assignment for streams that discover new edges, and identical mining
results for every algorithm downstream.
"""

import hashlib
from pathlib import Path

import pytest

from repro.core.export import result_to_json
from repro.core.miner import StreamSubgraphMiner
from repro.datasets.random_graphs import GraphStreamGenerator, RandomGraphModel
from repro.graph.edge_registry import EdgeRegistry
from repro.stream.stream import GraphStream, TransactionStream

WORKER_COUNTS = (0, 1, 4)
BACKENDS = ("memory", "disk")


def synthetic_snapshots(seed=7, count=95):
    model = RandomGraphModel(num_vertices=10, avg_fanout=3.0, seed=seed)
    generator = GraphStreamGenerator(model, avg_edges_per_snapshot=4.0, seed=seed + 1)
    return list(generator.snapshots(count))


def build_miner(backend, tmp_path, registry=None):
    return StreamSubgraphMiner(
        window_size=3,
        batch_size=15,
        algorithm="vertical",
        registry=registry,
        storage=backend if backend != "memory" else None,
        storage_path=tmp_path / "segments" if backend != "memory" else None,
    )


def segment_digests(storage_dir: Path):
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(Path(storage_dir).glob("seg-*.dsg"))
    }


def window_fingerprint(miner):
    return (
        dict(miner.matrix.item_frequencies()),
        miner.matrix.boundaries(),
        miner.matrix.items(),
        miner.batches_consumed,
    )


class TestSnapshotStreamParity:
    """GraphStream ingestion: fresh registries discover every edge in-flight."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worker_counts_match_sequential_append(self, backend, tmp_path):
        snapshots = synthetic_snapshots()
        # Reference: the historical sequential consume path.
        reference_registry = EdgeRegistry()
        reference = build_miner(backend, tmp_path / "seq", reference_registry)
        reference.consume(GraphStream(snapshots, registry=reference_registry, batch_size=15))
        reference_digests = (
            segment_digests(tmp_path / "seq" / "segments")
            if backend == "disk"
            else None
        )
        for workers in WORKER_COUNTS:
            registry = EdgeRegistry()
            miner = build_miner(backend, tmp_path / f"w{workers}", registry)
            miner.consume(
                GraphStream(snapshots, registry=registry, batch_size=15),
                ingest_workers=workers,
            )
            assert window_fingerprint(miner) == window_fingerprint(reference)
            # The registry-merge protocol reproduces sequential symbols.
            assert registry.items() == reference_registry.items()
            assert [registry.edge_for(item) for item in registry.items()] == [
                reference_registry.edge_for(item)
                for item in reference_registry.items()
            ]
            if backend == "disk":
                digests = segment_digests(tmp_path / f"w{workers}" / "segments")
                assert digests == reference_digests, (
                    f"ingest_workers={workers} persisted different segment bytes"
                )

    @pytest.mark.parametrize("algorithm", ["vertical", "vertical_direct", "fptree_multi"])
    def test_mining_results_identical_after_parallel_ingest(self, algorithm, tmp_path):
        snapshots = synthetic_snapshots()
        rendered = {}
        for workers in WORKER_COUNTS:
            registry = EdgeRegistry()
            miner = StreamSubgraphMiner(
                window_size=3, batch_size=15, algorithm=algorithm, registry=registry
            )
            miner.consume(
                GraphStream(snapshots, registry=registry, batch_size=15),
                ingest_workers=workers,
            )
            result = miner.mine(minsup=3, connected_only=True)
            rendered[workers] = result_to_json(result, registry)
        assert rendered[0] == rendered[1] == rendered[4], (
            f"{algorithm}: parallel ingestion changed the mined patterns"
        )

    def test_register_new_edges_false_raises_on_unseen_edge(self, tmp_path):
        snapshots = synthetic_snapshots()
        registry = EdgeRegistry()
        miner = build_miner("memory", tmp_path, registry)
        stream = GraphStream(
            snapshots, registry=registry, batch_size=15, register_new_edges=False
        )
        from repro.exceptions import EdgeRegistryError

        with pytest.raises(EdgeRegistryError):
            miner.consume(stream, ingest_workers=0)

    def test_prepopulated_frozen_registry_needs_no_merge(self, tmp_path):
        model = RandomGraphModel(num_vertices=10, avg_fanout=3.0, seed=7)
        registry = model.registry().freeze()
        snapshots = synthetic_snapshots()
        miner = build_miner("memory", tmp_path, registry)
        miner.consume(
            GraphStream(
                snapshots, registry=registry, batch_size=15, register_new_edges=False
            ),
            ingest_workers=2,
        )
        assert miner.batches_consumed == 7


class TestTransactionStreamParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_transaction_stream_matches_add_transactions(
        self, backend, workers, tmp_path
    ):
        registry = EdgeRegistry()
        transactions = [
            registry.encode(snapshot) for snapshot in synthetic_snapshots()
        ]
        reference = build_miner(backend, tmp_path / "seq")
        reference.add_transactions(transactions)
        reference.flush_pending()
        miner = build_miner(backend, tmp_path / f"w{workers}")
        miner.consume(
            TransactionStream(transactions, batch_size=15), ingest_workers=workers
        )
        assert window_fingerprint(miner) == window_fingerprint(reference)
        if backend == "disk":
            assert segment_digests(
                tmp_path / f"w{workers}" / "segments"
            ) == segment_digests(tmp_path / "seq" / "segments")

    def test_drop_last_is_honoured(self, tmp_path):
        transactions = [("a",), ("b",), ("a", "b"), ("c",), ("a",)]
        miner = build_miner("memory", tmp_path)
        miner.consume(
            TransactionStream(transactions, batch_size=2, drop_last=True),
            ingest_workers=0,
        )
        assert miner.matrix.boundaries() == [2, 4]  # trailing partial dropped

    def test_prebatched_iterable_matches_sequential(self, tmp_path):
        registry = EdgeRegistry()
        transactions = [
            registry.encode(snapshot) for snapshot in synthetic_snapshots()
        ]
        batches = list(TransactionStream(transactions, batch_size=15).batches())
        reference = build_miner("memory", tmp_path / "seq")
        reference.consume(batches)
        for workers in (0, 2):
            miner = build_miner("memory", tmp_path / f"w{workers}")
            miner.consume(batches, ingest_workers=workers)
            assert window_fingerprint(miner) == window_fingerprint(reference)


class TestMaxInflightParity:
    """Any in-flight bound yields the byte-identical committed window.

    The pipelined executor (DESIGN.md §9) only changes *when* encoded
    chunks become resident, never what is committed: for every
    ``ingest_workers`` × ``max_inflight`` combination the segment files,
    registry state and window fingerprint must equal the sequential path.
    """

    @pytest.mark.parametrize("workers", (0, 2))
    @pytest.mark.parametrize("max_inflight", (1, 2, 8))
    def test_disk_window_byte_identical(self, workers, max_inflight, tmp_path):
        snapshots = synthetic_snapshots()
        reference_registry = EdgeRegistry()
        reference = build_miner("disk", tmp_path / "seq", reference_registry)
        reference.consume(
            GraphStream(snapshots, registry=reference_registry, batch_size=15)
        )
        label = f"w{workers}m{max_inflight}"
        registry = EdgeRegistry()
        miner = build_miner("disk", tmp_path / label, registry)
        miner.consume(
            GraphStream(snapshots, registry=registry, batch_size=15),
            ingest_workers=workers,
            max_inflight=max_inflight,
        )
        assert window_fingerprint(miner) == window_fingerprint(reference)
        # Registry state: identical symbols assigned to identical edges.
        assert registry.items() == reference_registry.items()
        assert [registry.edge_for(item) for item in registry.items()] == [
            reference_registry.edge_for(item)
            for item in reference_registry.items()
        ]
        assert segment_digests(tmp_path / label / "segments") == segment_digests(
            tmp_path / "seq" / "segments"
        ), f"ingest_workers={workers} max_inflight={max_inflight} diverged"

    def test_report_exposes_inflight_accounting(self, tmp_path):
        from repro.ingest import ingest_transactions
        from repro.storage.backend import MemoryWindowStore

        store = MemoryWindowStore(3)
        report = ingest_transactions(
            store,
            [("a",), ("b",), ("a", "b")] * 10,
            batch_size=5,
            workers=2,
            max_inflight=2,
        )
        assert report.max_inflight == 2
        assert 1 <= report.peak_inflight <= 2
        assert report.batches == 6

    def test_invalid_max_inflight_rejected(self, tmp_path):
        from repro.exceptions import IngestError

        miner = build_miner("memory", tmp_path)
        with pytest.raises(IngestError):
            miner.consume(
                TransactionStream([("a",)], batch_size=1),
                ingest_workers=0,
                max_inflight=0,
            )


class TestWindowSemantics:
    def test_eviction_matches_sequential_path(self, tmp_path):
        """Streams longer than the window evict identically under ingestion."""
        transactions = [(chr(ord("a") + i % 6),) for i in range(40)]
        reference = build_miner("memory", tmp_path / "seq")
        reference.add_transactions(transactions)
        reference.flush_pending()
        miner = build_miner("memory", tmp_path / "par")
        miner.consume(
            TransactionStream(transactions, batch_size=15), ingest_workers=2
        )
        assert miner.matrix.num_batches == reference.matrix.num_batches == 3
        assert window_fingerprint(miner) == window_fingerprint(reference)

    def test_ingest_into_nonempty_window_continues_segment_ids(self, tmp_path):
        miner = build_miner("disk", tmp_path)
        miner.add_transactions([("a",)] * 15)
        miner.flush_pending()
        assert miner.matrix.next_segment_id == 1
        miner.consume(
            TransactionStream([("b",)] * 30, batch_size=15), ingest_workers=2
        )
        assert miner.matrix.next_segment_id == 3
        assert sorted(
            path.name for path in (tmp_path / "segments").glob("seg-*.dsg")
        ) == ["seg-00000000.dsg", "seg-00000001.dsg", "seg-00000002.dsg"]

    def test_negative_ingest_workers_rejected(self, tmp_path):
        from repro.exceptions import IngestError

        miner = build_miner("memory", tmp_path)
        with pytest.raises(IngestError):
            miner.consume(
                TransactionStream([("a",)], batch_size=1), ingest_workers=-1
            )
