"""Segment transport selection in the ingest pipeline (DESIGN.md §11)."""

import glob

import pytest

from repro.core.miner import StreamSubgraphMiner
from repro.datasets.random_graphs import GraphStreamGenerator, RandomGraphModel
from repro.exceptions import IngestError
from repro.graph.edge_registry import EdgeRegistry
from repro.ingest.api import ingest_snapshots
from repro.storage.shm import shared_memory_available
from repro.stream.stream import GraphStream

TRANSPORTS = ("auto", "shm", "pickle")


def synthetic_snapshots(seed=7, count=95):
    model = RandomGraphModel(num_vertices=10, avg_fanout=3.0, seed=seed)
    generator = GraphStreamGenerator(
        model, avg_edges_per_snapshot=4.0, seed=seed + 1
    )
    return list(generator.snapshots(count))


def build_miner(registry, transport="auto"):
    return StreamSubgraphMiner(
        window_size=3,
        batch_size=15,
        algorithm="vertical",
        registry=registry,
        transport=transport,
    )


def window_fingerprint(miner):
    return (
        dict(miner.matrix.item_frequencies()),
        miner.matrix.boundaries(),
        miner.matrix.items(),
        miner.batches_consumed,
    )


class TestIngestTransport:
    def test_transports_produce_identical_windows(self):
        snapshots = synthetic_snapshots()
        reference_registry = EdgeRegistry()
        reference = build_miner(reference_registry)
        reference.consume(
            GraphStream(snapshots, registry=reference_registry, batch_size=15)
        )
        for transport in TRANSPORTS:
            if transport == "shm" and not shared_memory_available():
                continue
            for workers in (0, 2):
                registry = EdgeRegistry()
                miner = build_miner(registry, transport=transport)
                miner.consume(
                    GraphStream(snapshots, registry=registry, batch_size=15),
                    ingest_workers=workers,
                )
                assert window_fingerprint(miner) == window_fingerprint(
                    reference
                ), f"transport={transport} workers={workers} diverged"
        assert glob.glob("/dev/shm/psm_*") == []

    def test_report_records_transport(self):
        snapshots = synthetic_snapshots()

        def report_for(workers, transport):
            registry = EdgeRegistry()
            miner = build_miner(registry)
            return ingest_snapshots(
                miner.matrix,
                snapshots,
                batch_size=15,
                registry=registry,
                workers=workers,
                transport=transport,
            )

        assert report_for(0, "auto").transport == "pickle"
        assert report_for(2, "pickle").transport == "pickle"
        if shared_memory_available():
            assert report_for(2, "auto").transport == "shm"
            assert report_for(2, "shm").transport == "shm"

    def test_forced_shm_raises_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(
            "repro.ingest.api.shared_memory_available", lambda: False
        )
        registry = EdgeRegistry()
        miner = build_miner(registry)
        with pytest.raises(IngestError):
            ingest_snapshots(
                miner.matrix,
                synthetic_snapshots(count=30),
                batch_size=15,
                registry=registry,
                workers=2,
                transport="shm",
            )

    def test_unknown_transport_rejected(self):
        registry = EdgeRegistry()
        miner = build_miner(registry)
        with pytest.raises(IngestError):
            ingest_snapshots(
                miner.matrix,
                synthetic_snapshots(count=30),
                batch_size=15,
                registry=registry,
                workers=0,
                transport="telegraph",
            )
