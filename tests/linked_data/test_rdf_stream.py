"""Unit tests for repro.linked_data.rdf_stream."""

import pytest

from repro.exceptions import LinkedDataError
from repro.graph.edge import Edge
from repro.linked_data.namespace import FOAF, Namespace
from repro.linked_data.rdf_stream import (
    RDFStreamAdapter,
    TripleStore,
    snapshot_from_triples,
    triple_to_edge,
)
from repro.linked_data.triple import IRI, BlankNode, Literal, Triple

EX = Namespace("http://example.org/")


def knows(a: str, b: str) -> Triple:
    return Triple(EX[a], FOAF.knows, EX[b])


class TestTripleToEdge:
    def test_resource_link_becomes_labelled_edge(self):
        edge = triple_to_edge(knows("alice", "bob"))
        assert isinstance(edge, Edge)
        assert edge.label == FOAF.knows.value
        assert set(edge.vertices) == {EX.alice.value, EX.bob.value}

    def test_predicate_label_can_be_dropped(self):
        edge = triple_to_edge(knows("alice", "bob"), use_predicate_label=False)
        assert edge.label is None

    def test_blank_nodes_become_prefixed_vertices(self):
        triple = Triple(BlankNode("doc"), EX.mentions, EX.bob)
        edge = triple_to_edge(triple)
        assert "_:doc" in edge.vertices

    def test_literal_object_rejected(self):
        attribute = Triple(EX.alice, EX.age, Literal("30"))
        with pytest.raises(LinkedDataError):
            triple_to_edge(attribute)

    def test_self_link_rejected(self):
        with pytest.raises(LinkedDataError):
            triple_to_edge(Triple(EX.alice, EX.sameAs, EX.alice))


class TestSnapshotFromTriples:
    def test_attribute_triples_skipped(self):
        triples = [knows("alice", "bob"), Triple(EX.alice, EX.age, Literal("30"))]
        snapshot = snapshot_from_triples(triples, timestamp=1)
        assert len(snapshot) == 1
        assert snapshot.timestamp == 1

    def test_strict_mode_raises_on_attribute_triples(self):
        triples = [Triple(EX.alice, EX.age, Literal("30"))]
        with pytest.raises(LinkedDataError):
            snapshot_from_triples(triples, skip_attribute_triples=False)

    def test_self_links_skipped(self):
        snapshot = snapshot_from_triples([Triple(EX.a, EX.sameAs, EX.a)])
        assert len(snapshot) == 0


class TestTripleStore:
    def make_store(self):
        store = TripleStore()
        store.add(knows("alice", "bob"))
        store.add(knows("bob", "carol"))
        store.add(Triple(EX.alice, EX.age, Literal("30")))
        return store

    def test_add_and_len(self):
        store = self.make_store()
        assert len(store) == 3
        store.add(knows("alice", "bob"))  # idempotent
        assert len(store) == 3

    def test_match_patterns(self):
        store = self.make_store()
        assert len(store.match(subject=EX.alice)) == 2
        assert len(store.match(predicate=FOAF.knows)) == 2
        assert len(store.match(obj=EX.carol)) == 1
        assert len(store.match()) == 3

    def test_value(self):
        store = self.make_store()
        assert store.value(EX.alice, EX.age) == Literal("30")
        assert store.value(EX.carol, EX.age) is None

    def test_subjects_and_predicates(self):
        store = self.make_store()
        assert EX.alice in store.subjects()
        assert FOAF.knows in store.predicates()

    def test_remove_and_contains(self):
        store = self.make_store()
        triple = knows("alice", "bob")
        assert triple in store
        store.remove(triple)
        assert triple not in store

    def test_to_snapshot_only_links(self):
        snapshot = self.make_store().to_snapshot()
        assert len(snapshot) == 2

    def test_iteration_is_deterministic(self):
        store = self.make_store()
        assert list(store) == list(store)


class TestRDFStreamAdapter:
    def make_triples(self, count):
        return [knows(f"p{i}", f"p{i + 1}") for i in range(count)]

    def test_group_size_validation(self):
        with pytest.raises(LinkedDataError):
            RDFStreamAdapter(group_size=0)

    def test_snapshots_by_group_size(self):
        adapter = RDFStreamAdapter(group_size=3)
        snapshots = list(adapter.snapshots_from_triples(self.make_triples(7)))
        assert [len(s) for s in snapshots] == [3, 3, 1]
        assert [s.timestamp for s in snapshots] == [0, 1, 2]

    def test_attribute_triples_do_not_count_towards_groups(self):
        triples = [
            knows("a", "b"),
            Triple(EX.a, EX.age, Literal("1")),
            knows("b", "c"),
        ]
        adapter = RDFStreamAdapter(group_size=2)
        snapshots = list(adapter.snapshots_from_triples(triples))
        assert len(snapshots) == 1
        assert len(snapshots[0]) == 2

    def test_snapshots_from_documents(self):
        documents = [self.make_triples(2), self.make_triples(4)]
        adapter = RDFStreamAdapter()
        snapshots = list(adapter.snapshots_from_documents(documents))
        assert [s.timestamp for s in snapshots] == [0, 1]
        assert len(snapshots[1]) == 4

    def test_predicate_label_propagation(self):
        adapter = RDFStreamAdapter(group_size=1, use_predicate_label=False)
        snapshot = next(adapter.snapshots_from_triples(self.make_triples(1)))
        assert all(edge.label is None for edge in snapshot)
