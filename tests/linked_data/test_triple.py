"""Unit tests for repro.linked_data.triple."""

import pytest

from repro.exceptions import LinkedDataError
from repro.linked_data.triple import IRI, BlankNode, Literal, Triple


class TestIRI:
    def test_value_and_n3(self):
        iri = IRI("http://example.org/alice")
        assert iri.value == "http://example.org/alice"
        assert iri.n3() == "<http://example.org/alice>"

    def test_invalid_iri(self):
        with pytest.raises(LinkedDataError):
            IRI("")
        with pytest.raises(LinkedDataError):
            IRI("http://bad<chars>")

    def test_local_name(self):
        assert IRI("http://example.org/people#alice").local_name() == "alice"
        assert IRI("http://example.org/people/alice").local_name() == "alice"
        assert IRI("urn:isbn:123").local_name() == "urn:isbn:123"

    def test_equality_and_hash(self):
        assert IRI("http://x/a") == IRI("http://x/a")
        assert hash(IRI("http://x/a")) == hash(IRI("http://x/a"))
        assert IRI("http://x/a") != IRI("http://x/b")
        assert IRI("http://x/a") != "http://x/a"


class TestLiteral:
    def test_plain_literal(self):
        literal = Literal("hello")
        assert literal.value == "hello"
        assert literal.n3() == '"hello"'

    def test_language_literal(self):
        assert Literal("bonjour", language="fr").n3() == '"bonjour"@fr'

    def test_typed_literal(self):
        datatype = IRI("http://www.w3.org/2001/XMLSchema#integer")
        assert Literal("42", datatype=datatype).n3().endswith("#integer>")

    def test_datatype_and_language_mutually_exclusive(self):
        with pytest.raises(LinkedDataError):
            Literal("x", datatype=IRI("http://x/t"), language="en")

    def test_escaping(self):
        literal = Literal('say "hi"\nplease')
        assert "\\n" in literal.n3()
        assert '\\"' in literal.n3()

    def test_equality(self):
        assert Literal("a") == Literal("a")
        assert Literal("a", language="en") != Literal("a")


class TestBlankNode:
    def test_label_and_n3(self):
        node = BlankNode("b0")
        assert node.label == "b0"
        assert node.n3() == "_:b0"

    def test_invalid_label(self):
        with pytest.raises(LinkedDataError):
            BlankNode("")
        with pytest.raises(LinkedDataError):
            BlankNode("has space")

    def test_equality(self):
        assert BlankNode("x") == BlankNode("x")
        assert BlankNode("x") != BlankNode("y")


class TestTriple:
    def make(self):
        return Triple(
            IRI("http://x/alice"), IRI("http://x/knows"), IRI("http://x/bob")
        )

    def test_accessors(self):
        triple = self.make()
        assert triple.subject.value.endswith("alice")
        assert triple.predicate.value.endswith("knows")
        assert triple.object.value.endswith("bob")
        assert triple.as_tuple() == (triple.subject, triple.predicate, triple.object)

    def test_invalid_terms(self):
        with pytest.raises(LinkedDataError):
            Triple(Literal("x"), IRI("http://x/p"), IRI("http://x/o"))
        with pytest.raises(LinkedDataError):
            Triple(IRI("http://x/s"), BlankNode("b"), IRI("http://x/o"))
        with pytest.raises(LinkedDataError):
            Triple(IRI("http://x/s"), IRI("http://x/p"), "bare string")

    def test_links_resources(self):
        assert self.make().links_resources()
        attribute = Triple(IRI("http://x/s"), IRI("http://x/age"), Literal("30"))
        assert not attribute.links_resources()

    def test_n3_round_trippable_format(self):
        assert self.make().n3().endswith(" .")

    def test_equality_and_hash(self):
        assert self.make() == self.make()
        assert hash(self.make()) == hash(self.make())
