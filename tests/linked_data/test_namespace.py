"""Unit tests for repro.linked_data.namespace."""

import pytest

from repro.exceptions import LinkedDataError
from repro.linked_data.namespace import DCTERMS, FOAF, RDF, RDFS, Namespace
from repro.linked_data.triple import IRI


class TestNamespace:
    def test_term_building(self):
        ex = Namespace("http://example.org/")
        assert ex.term("alice") == IRI("http://example.org/alice")
        assert ex["knows"] == IRI("http://example.org/knows")
        assert ex.alice == IRI("http://example.org/alice")

    def test_empty_base_rejected(self):
        with pytest.raises(LinkedDataError):
            Namespace("")

    def test_contains(self):
        ex = Namespace("http://example.org/")
        assert ex.alice in ex
        assert IRI("http://other.org/x") not in ex
        assert "not an IRI" not in ex

    def test_underscore_attributes_not_treated_as_terms(self):
        ex = Namespace("http://example.org/")
        with pytest.raises(AttributeError):
            _ = ex._private

    def test_well_known_namespaces(self):
        assert RDF.type.value.endswith("#type")
        assert RDFS.label.value.endswith("#label")
        assert FOAF.knows.value.endswith("knows")
        assert DCTERMS.creator.value.endswith("creator")

    def test_repr(self):
        assert "example.org" in repr(Namespace("http://example.org/"))
