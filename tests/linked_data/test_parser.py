"""Unit tests for the N-Triples parser and serialiser."""

import pytest

from repro.exceptions import ParseError
from repro.linked_data.parser import (
    parse_ntriples,
    parse_ntriples_line,
    serialize_ntriples,
)
from repro.linked_data.triple import IRI, BlankNode, Literal, Triple

DOCUMENT = """
# people
<http://x/alice> <http://x/knows> <http://x/bob> .
<http://x/alice> <http://x/name> "Alice" .
_:doc1 <http://x/mentions> <http://x/bob> .
<http://x/bob> <http://x/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/bob> <http://x/label> "Bob le bricoleur"@fr .
"""


class TestParsing:
    def test_parse_document(self):
        triples = list(parse_ntriples(DOCUMENT))
        assert len(triples) == 5
        assert triples[0].subject == IRI("http://x/alice")
        assert triples[0].object == IRI("http://x/bob")

    def test_comments_and_blank_lines_skipped(self):
        assert list(parse_ntriples("# nothing\n\n")) == []

    def test_blank_node_subject(self):
        triples = list(parse_ntriples(DOCUMENT))
        assert triples[2].subject == BlankNode("doc1")

    def test_typed_literal(self):
        triples = list(parse_ntriples(DOCUMENT))
        assert triples[3].object == Literal(
            "42", datatype=IRI("http://www.w3.org/2001/XMLSchema#integer")
        )

    def test_language_literal(self):
        triples = list(parse_ntriples(DOCUMENT))
        assert triples[4].object == Literal("Bob le bricoleur", language="fr")

    def test_escaped_quotes_and_newlines(self):
        line = '<http://x/s> <http://x/p> "he said \\"hi\\"\\n" .'
        triple = parse_ntriples_line(line)
        assert triple.object == Literal('he said "hi"\n')

    def test_unicode_escape(self):
        triple = parse_ntriples_line('<http://x/s> <http://x/p> "caf\\u00e9" .')
        assert triple.object == Literal("café")

    def test_iterable_of_lines(self):
        lines = ["<http://x/s> <http://x/p> <http://x/o> ."]
        assert len(list(parse_ntriples(lines))) == 1


class TestParseErrors:
    @pytest.mark.parametrize(
        "line",
        [
            "<http://x/s> <http://x/p> <http://x/o>",            # missing dot
            "<http://x/s> <http://x/p> .",                        # missing object
            '"literal" <http://x/p> <http://x/o> .',              # literal subject
            "<http://x/s> _:b <http://x/o> .",                    # blank predicate
            "<http://x/s> <http://x/p> <http://x/o> . extra",     # trailing junk
            "<http://x/s> <http://x/p> <http://x/o .",            # unterminated IRI
            '<http://x/s> <http://x/p> "unterminated .',          # unterminated literal
        ],
    )
    def test_malformed_lines_raise(self, line):
        with pytest.raises(ParseError):
            parse_ntriples_line(line)

    def test_dangling_escape(self):
        with pytest.raises(ParseError):
            parse_ntriples_line('<http://x/s> <http://x/p> "bad\\" escape\\ .')


class TestSerialisation:
    def test_round_trip(self):
        triples = list(parse_ntriples(DOCUMENT))
        text = serialize_ntriples(triples)
        reparsed = list(parse_ntriples(text))
        assert reparsed == triples

    def test_serialise_single(self):
        triple = Triple(IRI("http://x/s"), IRI("http://x/p"), Literal("v"))
        assert serialize_ntriples([triple]).strip() == '<http://x/s> <http://x/p> "v" .'
