"""Unit tests for repro.stream.batch.Batch."""

import pytest

from repro.exceptions import StreamError
from repro.stream.batch import Batch


class TestBatch:
    def test_transactions_are_normalised(self):
        batch = Batch([["b", "a", "a"], ("c",)])
        assert batch.transactions == (("a", "b"), ("c",))

    def test_len_and_indexing(self):
        batch = Batch([["a"], ["b", "c"]])
        assert len(batch) == 2
        assert batch[1] == ("b", "c")

    def test_iteration(self):
        batch = Batch([["a"], ["b"]])
        assert list(batch) == [("a",), ("b",)]

    def test_empty_transaction_allowed(self):
        batch = Batch([[]])
        assert batch.transactions == ((),)

    def test_item_frequencies(self):
        batch = Batch([["a", "b"], ["a", "c"], ["a"]])
        counts = batch.item_frequencies()
        assert counts["a"] == 3
        assert counts["b"] == 1

    def test_items_sorted(self):
        batch = Batch([["c", "a"], ["b"]])
        assert batch.items() == ["a", "b", "c"]

    def test_batch_id_and_with_id(self):
        batch = Batch([["a"]], batch_id=3)
        assert batch.batch_id == 3
        renamed = batch.with_id(9)
        assert renamed.batch_id == 9
        assert renamed.transactions == batch.transactions

    def test_equality_and_hash_ignore_id(self):
        assert Batch([["a"]], batch_id=1) == Batch([["a"]], batch_id=2)
        assert hash(Batch([["a"]])) == hash(Batch([["a"]], batch_id=5))

    def test_merge(self):
        merged = Batch.merge([Batch([["a"]]), Batch([["b"], ["c"]])])
        assert merged.transactions == (("a",), ("b",), ("c",))

    def test_merge_empty_raises(self):
        with pytest.raises(StreamError):
            Batch.merge([])

    def test_repr(self):
        assert "2 transactions" in repr(Batch([["a"], ["b"]], batch_id=0))
