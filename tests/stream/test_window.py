"""Unit tests for repro.stream.window.SlidingWindow."""

import pytest

from repro.exceptions import WindowError
from repro.stream.batch import Batch
from repro.stream.window import SlidingWindow


class TestSlidingWindow:
    def test_invalid_size_rejected(self):
        with pytest.raises(WindowError):
            SlidingWindow(0)
        with pytest.raises(WindowError):
            SlidingWindow(-3)

    def test_push_returns_none_while_filling(self):
        window = SlidingWindow(2)
        assert window.push(Batch([["a"]])) is None
        assert window.push(Batch([["b"]])) is None
        assert window.is_full

    def test_push_evicts_oldest_when_full(self):
        window = SlidingWindow(2)
        first = Batch([["a"]], batch_id=0)
        window.push(first)
        window.push(Batch([["b"]], batch_id=1))
        evicted = window.push(Batch([["c"]], batch_id=2))
        assert evicted is first
        assert [b.batch_id for b in window.batches] == [1, 2]

    def test_transactions_in_window_order(self):
        window = SlidingWindow(3)
        window.push(Batch([["a"], ["b"]]))
        window.push(Batch([["c"]]))
        assert window.transactions() == [("a",), ("b",), ("c",)]

    def test_boundaries_match_paper_example(self, paper_batches):
        window = SlidingWindow(2)
        for batch in paper_batches:
            window.push(batch)
        assert window.boundaries() == [3, 6]

    def test_transaction_count(self):
        window = SlidingWindow(2)
        window.push(Batch([["a"], ["b"]]))
        window.push(Batch([["c"]]))
        assert window.transaction_count() == 3

    def test_item_frequencies_across_batches(self):
        window = SlidingWindow(2)
        window.push(Batch([["a", "b"]]))
        window.push(Batch([["a"]]))
        counts = window.item_frequencies()
        assert counts["a"] == 2
        assert counts["b"] == 1

    def test_items_sorted(self):
        window = SlidingWindow(2)
        window.push(Batch([["c", "a"]]))
        assert window.items() == ["a", "c"]

    def test_len_and_iter(self):
        window = SlidingWindow(5)
        window.push(Batch([["a"]]))
        assert len(window) == 1
        assert list(window)[0].transactions == (("a",),)

    def test_repr(self):
        window = SlidingWindow(2)
        assert "size=2" in repr(window)
