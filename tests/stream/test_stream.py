"""Unit tests for repro.stream.stream (TransactionStream and GraphStream)."""

import pytest

from repro.exceptions import StreamError
from repro.graph.edge import Edge
from repro.graph.edge_registry import EdgeRegistry
from repro.graph.graph import GraphSnapshot
from repro.stream.stream import GraphStream, TransactionStream, assemble_batches


class TestAssembleBatches:
    """The pure batch-assembly kernel shared with the ingestion planner."""

    def test_matches_transaction_stream_batching(self):
        transactions = [[f"i{index}"] for index in range(7)]
        via_stream = list(TransactionStream(transactions, batch_size=3).batches())
        via_function = list(assemble_batches(transactions, batch_size=3))
        assert via_function == via_stream
        assert [b.batch_id for b in via_function] == [0, 1, 2]

    def test_start_batch_id_offsets_ids(self):
        batches = list(assemble_batches([["a"], ["b"]], batch_size=1, start_batch_id=5))
        assert [b.batch_id for b in batches] == [5, 6]

    def test_drop_last_discards_partial(self):
        batches = list(assemble_batches([["a"], ["b"], ["c"]], batch_size=2, drop_last=True))
        assert [len(b) for b in batches] == [2]

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(StreamError):
            list(assemble_batches([], batch_size=0))

    def test_raw_accessors_round_trip(self):
        transactions = [["a"], ["b"]]
        stream = TransactionStream(transactions, batch_size=2, drop_last=True)
        assert stream.raw_transactions is transactions
        assert stream.drop_last is True
        snapshots = [GraphSnapshot([Edge("v1", "v2")])]
        graph_stream = GraphStream(snapshots, batch_size=1, register_new_edges=False)
        assert graph_stream.raw_snapshots is snapshots
        assert graph_stream.register_new_edges is False


class TestTransactionStream:
    def test_batches_have_sequential_ids(self):
        stream = TransactionStream([["a"], ["b"], ["c"], ["d"]], batch_size=2)
        batches = list(stream.batches())
        assert [b.batch_id for b in batches] == [0, 1]
        assert [len(b) for b in batches] == [2, 2]

    def test_trailing_partial_batch_kept_by_default(self):
        stream = TransactionStream([["a"], ["b"], ["c"]], batch_size=2)
        batches = list(stream)
        assert [len(b) for b in batches] == [2, 1]

    def test_trailing_partial_batch_dropped_when_requested(self):
        stream = TransactionStream([["a"], ["b"], ["c"]], batch_size=2, drop_last=True)
        assert [len(b) for b in stream] == [2]

    def test_invalid_batch_size(self):
        with pytest.raises(StreamError):
            TransactionStream([], batch_size=0)

    def test_generator_input_consumed_lazily(self):
        def generate():
            for index in range(5):
                yield [f"i{index}"]

        stream = TransactionStream(generate(), batch_size=2)
        assert sum(len(b) for b in stream) == 5


class TestGraphStream:
    def make_snapshots(self):
        return [
            GraphSnapshot([Edge("v1", "v2"), Edge("v2", "v3")]),
            GraphSnapshot([Edge("v1", "v2")]),
            GraphSnapshot([Edge("v3", "v4")]),
        ]

    def test_encodes_snapshots_with_registry(self):
        stream = GraphStream(self.make_snapshots(), batch_size=2)
        transactions = list(stream.transactions())
        assert transactions[0] == ("a", "b")
        assert transactions[1] == ("a",)

    def test_creates_registry_when_missing(self):
        stream = GraphStream(self.make_snapshots(), batch_size=2)
        list(stream.batches())
        assert len(stream.registry) == 3

    def test_uses_supplied_registry(self):
        registry = EdgeRegistry()
        registry.register(Edge("v1", "v2"), "x")
        stream = GraphStream(self.make_snapshots(), registry=registry, batch_size=2)
        transactions = list(stream.transactions())
        assert "x" in transactions[0]

    def test_rejects_unknown_edges_when_registration_disabled(self):
        registry = EdgeRegistry().freeze()
        stream = GraphStream(
            self.make_snapshots(), registry=registry, batch_size=2, register_new_edges=False
        )
        with pytest.raises(Exception):
            list(stream.transactions())

    def test_batching(self):
        stream = GraphStream(self.make_snapshots(), batch_size=2)
        batches = list(stream)
        assert [len(b) for b in batches] == [2, 1]

    def test_invalid_batch_size(self):
        with pytest.raises(StreamError):
            GraphStream([], batch_size=-1)
