"""Tests for closed / maximal pattern summarisation on MiningResult."""

from repro.core.miner import StreamSubgraphMiner
from repro.core.patterns import MiningResult
from repro.datasets.paper_example import paper_example_batches, paper_example_registry


def make_result():
    counts = {
        frozenset({"a"}): 5,
        frozenset({"b"}): 3,
        frozenset({"a", "b"}): 3,
        frozenset({"a", "c"}): 2,
        frozenset({"c"}): 2,
        frozenset({"a", "b", "c"}): 1,
    }
    return MiningResult.from_counts(counts)


class TestClosed:
    def test_closed_removes_patterns_absorbed_by_equal_support_supersets(self):
        closed = make_result().closed()
        # {b}:3 is absorbed by {a,b}:3; {c}:2 by {a,c}:2.
        assert {"b"} not in closed
        assert {"c"} not in closed
        assert {"a"} in closed          # support 5 unmatched by any superset
        assert {"a", "b"} in closed
        assert {"a", "c"} in closed
        assert {"a", "b", "c"} in closed

    def test_closed_preserves_supports(self):
        closed = make_result().closed()
        assert closed.support_of({"a", "b"}) == 3

    def test_closed_is_idempotent(self):
        closed = make_result().closed()
        assert closed.closed() == closed


class TestMaximal:
    def test_maximal_keeps_only_top_patterns(self):
        maximal = make_result().maximal()
        assert len(maximal) == 1
        assert {"a", "b", "c"} in maximal

    def test_maximal_subset_of_closed(self):
        result = make_result()
        maximal_sets = {p.items for p in result.maximal()}
        closed_sets = {p.items for p in result.closed()}
        assert maximal_sets <= closed_sets

    def test_empty_result(self):
        empty = MiningResult([])
        assert len(empty.closed()) == 0
        assert len(empty.maximal()) == 0


class TestOnPaperExample:
    def test_paper_example_summaries(self):
        registry = paper_example_registry()
        miner = StreamSubgraphMiner(
            window_size=2, batch_size=3, algorithm="vertical", registry=registry
        )
        for batch in paper_example_batches():
            miner.add_batch(batch)
        result = miner.mine(minsup=2)          # 15 connected patterns
        closed = result.closed()
        maximal = result.maximal()
        assert len(maximal) <= len(closed) <= len(result)
        # The 4-edge collection {a,c,d,f} is both closed and maximal.
        assert {"a", "c", "d", "f"} in closed
        assert {"a", "c", "d", "f"} in maximal
        # Every maximal pattern is connected (inherited from the result).
        for pattern in maximal:
            assert pattern.is_connected()

    def test_closed_supports_recover_all_supports(self):
        registry = paper_example_registry()
        miner = StreamSubgraphMiner(
            window_size=2, batch_size=3, algorithm="vertical", registry=registry
        )
        for batch in paper_example_batches():
            miner.add_batch(batch)
        result = miner.mine_all_collections(minsup=2)
        closed = result.closed()
        # Closedness property: each pattern's support equals the maximum
        # support of a closed superset.
        for pattern in result:
            supers = [
                c.support
                for c in closed
                if pattern.items <= c.items
            ]
            assert max(supers) == pattern.support
