"""Unit tests for repro.core.patterns (FrequentPattern and MiningResult)."""

import pytest

from repro.core.patterns import FrequentPattern, MiningResult
from repro.exceptions import MiningError
from repro.graph.edge import Edge


class TestFrequentPattern:
    def test_empty_pattern_rejected(self):
        with pytest.raises(MiningError):
            FrequentPattern([], support=1)

    def test_negative_support_rejected(self):
        with pytest.raises(MiningError):
            FrequentPattern(["a"], support=-1)

    def test_basic_accessors(self):
        pattern = FrequentPattern(["b", "a"], support=3)
        assert pattern.items == frozenset({"a", "b"})
        assert pattern.sorted_items() == ("a", "b")
        assert pattern.support == 3
        assert pattern.size == 2
        assert len(pattern) == 2
        assert "a" in pattern
        assert list(pattern) == ["a", "b"]

    def test_singleton_detection(self):
        assert FrequentPattern(["a"], 1).is_singleton()
        assert not FrequentPattern(["a", "b"], 1).is_singleton()

    def test_connectivity_requires_edges(self):
        with pytest.raises(MiningError):
            FrequentPattern(["a"], 1).is_connected()

    def test_connectivity_rules(self):
        connected = FrequentPattern(
            ["a", "c"], 2, edges=frozenset({Edge("v1", "v2"), Edge("v1", "v4")})
        )
        disjoint = FrequentPattern(
            ["a", "f"], 2, edges=frozenset({Edge("v1", "v2"), Edge("v3", "v4")})
        )
        assert connected.is_connected(rule="exact")
        assert connected.is_connected(rule="paper")
        assert not disjoint.is_connected(rule="exact")
        assert not disjoint.is_connected(rule="paper")
        with pytest.raises(MiningError):
            connected.is_connected(rule="bogus")

    def test_equality_and_repr(self):
        assert FrequentPattern(["a"], 2) == FrequentPattern(["a"], 2)
        assert FrequentPattern(["a"], 2) != FrequentPattern(["a"], 3)
        assert "{a}:2" in repr(FrequentPattern(["a"], 2))


class TestMiningResult:
    def make_result(self):
        counts = {
            frozenset({"a"}): 5,
            frozenset({"b"}): 2,
            frozenset({"a", "b"}): 2,
            frozenset({"a", "c"}): 4,
            frozenset({"a", "b", "c"}): 1,
        }
        return MiningResult.from_counts(counts)

    def test_from_counts_and_len(self):
        result = self.make_result()
        assert len(result) == 5

    def test_support_of(self):
        result = self.make_result()
        assert result.support_of({"a", "b"}) == 2
        assert result.support_of({"z"}) is None

    def test_contains(self):
        result = self.make_result()
        assert {"a"} in result
        assert ["a", "c"] in result
        assert frozenset({"z"}) not in result
        assert "not-iterable-of-items" not in result

    def test_patterns_sorted_by_size_then_items(self):
        ordered = self.make_result().patterns()
        sizes = [p.size for p in ordered]
        assert sizes == sorted(sizes)

    def test_singletons_and_non_singletons(self):
        result = self.make_result()
        assert len(result.singletons()) == 2
        assert len(result.non_singletons()) == 3

    def test_of_size_and_min_support(self):
        result = self.make_result()
        assert len(result.of_size(2)) == 2
        assert len(result.with_min_support(4)) == 2

    def test_size_histogram_and_max_size(self):
        result = self.make_result()
        assert result.size_histogram() == {1: 2, 2: 2, 3: 1}
        assert result.max_pattern_size() == 3
        assert MiningResult([]).max_pattern_size() == 0

    def test_top_k(self):
        top = self.make_result().top(2)
        assert top[0].support == 5
        assert len(top) == 2

    def test_to_dict_round_trip(self):
        result = self.make_result()
        assert MiningResult.from_counts(result.to_dict()) == result

    def test_conflicting_supports_rejected(self):
        with pytest.raises(MiningError):
            MiningResult(
                [FrequentPattern(["a"], 2), FrequentPattern(["a"], 3)]
            )

    def test_connected_filter_with_registry(self, paper_registry):
        counts = {frozenset({"a", "c"}): 4, frozenset({"a", "f"}): 4}
        result = MiningResult.from_counts(counts, registry=paper_registry)
        connected = result.connected()
        assert {"a", "c"} in connected
        assert {"a", "f"} not in connected

    def test_repr(self):
        assert "5 patterns" in repr(self.make_result())
