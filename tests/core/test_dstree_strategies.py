"""Tests for the two DSTree mining strategies (§2.1 projection vs rebuild)."""

import pytest

from repro.core.algorithms.baselines import DSTreeMiner
from repro.datasets.paper_example import PAPER_ALL_FREQUENT
from repro.exceptions import MiningError
from tests.helpers import brute_force_frequent_itemsets, transactions_from_batches


class TestDSTreeStrategies:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(MiningError):
            DSTreeMiner(window_size=2, strategy="magic")

    def test_default_strategy_is_projection(self):
        assert DSTreeMiner(window_size=2).strategy == "projection"

    @pytest.mark.parametrize("strategy", ["projection", "rebuild"])
    def test_paper_example(self, strategy, paper_batches):
        miner = DSTreeMiner(window_size=2, strategy=strategy)
        for batch in paper_batches:
            miner.append_batch(batch)
        assert miner.mine(2) == PAPER_ALL_FREQUENT

    @pytest.mark.parametrize("minsup", [1, 2, 3, 5])
    def test_strategies_agree(self, minsup, paper_batches):
        projection = DSTreeMiner(window_size=3, strategy="projection")
        rebuild = DSTreeMiner(window_size=3, strategy="rebuild")
        for batch in paper_batches:
            projection.append_batch(batch)
            rebuild.append_batch(batch)
        assert projection.mine(minsup) == rebuild.mine(minsup)

    def test_projection_matches_brute_force_on_full_stream(self, paper_batches):
        miner = DSTreeMiner(window_size=3, strategy="projection")
        for batch in paper_batches:
            miner.append_batch(batch)
        expected = brute_force_frequent_itemsets(
            transactions_from_batches(paper_batches), 2
        )
        assert miner.mine(2) == expected

    def test_projection_builds_fptrees_per_item(self, paper_batches):
        miner = DSTreeMiner(window_size=2, strategy="projection")
        for batch in paper_batches:
            miner.append_batch(batch)
        miner.mine(2)
        # One local FP-tree (at least) per frequent non-leading item.
        assert miner.stats.fptrees_built >= 4
        assert miner.stats.extra["dstree_nodes"] > 0
