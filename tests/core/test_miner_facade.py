"""Unit tests for the StreamSubgraphMiner facade."""

import pytest

from repro.core.algorithms import get_algorithm
from repro.core.miner import StreamSubgraphMiner
from repro.datasets.paper_example import (
    PAPER_ALL_FREQUENT,
    PAPER_CONNECTED_FREQUENT,
    paper_example_snapshots,
)
from repro.exceptions import MiningError, StreamError
from repro.graph.edge import Edge
from repro.graph.graph import GraphSnapshot
from repro.stream.batch import Batch
from repro.stream.stream import GraphStream


class TestConstruction:
    def test_invalid_batch_size(self):
        with pytest.raises(StreamError):
            StreamSubgraphMiner(window_size=2, batch_size=0)

    def test_invalid_algorithm_object(self):
        with pytest.raises(MiningError):
            StreamSubgraphMiner(window_size=2, algorithm=123)

    def test_algorithm_can_be_instance(self):
        miner = StreamSubgraphMiner(window_size=2, algorithm=get_algorithm("vertical"))
        assert miner.algorithm.name == "vertical"

    def test_algorithm_setter(self):
        miner = StreamSubgraphMiner(window_size=2)
        miner.algorithm = "fptree_multi"
        assert miner.algorithm.name == "fptree_multi"

    def test_available_algorithms(self):
        miner = StreamSubgraphMiner(window_size=2)
        assert "vertical_direct" in miner.available_algorithms()

    def test_storage_path_persists_matrix(self, paper_registry, paper_batches, tmp_path):
        target = tmp_path / "stream.dsm"
        miner = StreamSubgraphMiner(
            window_size=2, registry=paper_registry, storage_path=target
        )
        miner.add_batch(paper_batches[0])
        assert target.exists()


class TestFeeding:
    def test_add_snapshots_batches_by_batch_size(self, paper_registry):
        miner = StreamSubgraphMiner(window_size=2, batch_size=3, registry=paper_registry)
        miner.add_snapshots(paper_example_snapshots())
        assert miner.batches_consumed == 3
        assert miner.transaction_count == 6  # window of 2 batches x 3 graphs

    def test_flush_pending_handles_partial_batch(self, paper_registry):
        miner = StreamSubgraphMiner(window_size=2, batch_size=4, registry=paper_registry)
        miner.add_snapshots(paper_example_snapshots()[:5])
        assert miner.batches_consumed == 1  # only one full batch so far
        miner.flush_pending()
        assert miner.batches_consumed == 2

    def test_mine_flushes_pending_automatically(self, paper_registry):
        miner = StreamSubgraphMiner(window_size=3, batch_size=100, registry=paper_registry)
        miner.add_snapshots(paper_example_snapshots())
        result = miner.mine(minsup=2)
        assert miner.transaction_count == 9
        assert len(result) > 0

    def test_consume_graph_stream_shares_registry(self, paper_registry):
        stream = GraphStream(
            paper_example_snapshots(), registry=paper_registry, batch_size=3
        )
        miner = StreamSubgraphMiner(window_size=2, registry=paper_registry)
        miner.consume(stream)
        assert miner.transaction_count == 6

    def test_consume_graph_stream_with_foreign_registry_rejected(self):
        stream = GraphStream(paper_example_snapshots(), batch_size=3)
        miner = StreamSubgraphMiner(window_size=2)
        with pytest.raises(StreamError):
            miner.consume(stream)

    def test_consume_batches(self, paper_batches):
        miner = StreamSubgraphMiner(window_size=2)
        miner.consume(paper_batches)
        assert miner.transaction_count == 6

    def test_consume_rejects_non_batches(self):
        miner = StreamSubgraphMiner(window_size=2)
        with pytest.raises(StreamError):
            miner.consume([["a", "b"]])

    def test_new_edges_registered_on_the_fly(self):
        miner = StreamSubgraphMiner(window_size=1, batch_size=2)
        miner.add_snapshots(
            [
                GraphSnapshot([Edge("x", "y")]),
                GraphSnapshot([Edge("y", "z"), Edge("x", "y")]),
            ]
        )
        assert len(miner.registry) == 2


class TestMining:
    def make_paper_miner(self, paper_registry, paper_batches, algorithm="vertical_direct"):
        miner = StreamSubgraphMiner(
            window_size=2, batch_size=3, algorithm=algorithm, registry=paper_registry
        )
        for batch in paper_batches:
            miner.add_batch(batch)
        return miner

    def test_connected_mining_matches_paper(self, paper_registry, paper_batches):
        miner = self.make_paper_miner(paper_registry, paper_batches)
        assert miner.mine(2).to_dict() == PAPER_CONNECTED_FREQUENT

    def test_all_collections_matches_paper(self, paper_registry, paper_batches):
        miner = self.make_paper_miner(paper_registry, paper_batches, algorithm="vertical")
        assert miner.mine_all_collections(2).to_dict() == PAPER_ALL_FREQUENT

    def test_relative_minsup(self, paper_registry, paper_batches):
        miner = self.make_paper_miner(paper_registry, paper_batches, algorithm="vertical")
        # 1/3 of 6 window transactions = 2.
        assert miner.mine(1 / 3).to_dict() == PAPER_CONNECTED_FREQUENT

    def test_direct_algorithm_cannot_return_disconnected(self, paper_registry, paper_batches):
        miner = self.make_paper_miner(paper_registry, paper_batches)
        with pytest.raises(MiningError):
            miner.mine(2, connected_only=False)

    def test_per_call_algorithm_override(self, paper_registry, paper_batches):
        miner = self.make_paper_miner(paper_registry, paper_batches, algorithm="vertical")
        result = miner.mine(2, algorithm="fptree_single")
        assert result.to_dict() == PAPER_CONNECTED_FREQUENT

    def test_paper_rule_option(self, paper_registry, paper_batches):
        miner = self.make_paper_miner(paper_registry, paper_batches, algorithm="vertical")
        assert miner.mine(2, rule="paper").to_dict() == PAPER_CONNECTED_FREQUENT

    def test_patterns_carry_decoded_edges(self, paper_registry, paper_batches):
        miner = self.make_paper_miner(paper_registry, paper_batches)
        result = miner.mine(2)
        for pattern in result:
            assert pattern.edges is not None
            assert pattern.is_connected()

    def test_window_slide_changes_results(self, paper_registry, paper_batches):
        miner = StreamSubgraphMiner(
            window_size=2, batch_size=3, algorithm="vertical", registry=paper_registry
        )
        miner.add_batch(paper_batches[0])
        miner.add_batch(paper_batches[1])
        before = miner.mine_all_collections(2).to_dict()
        miner.add_batch(paper_batches[2])
        after = miner.mine_all_collections(2).to_dict()
        assert before != after
        assert after == PAPER_ALL_FREQUENT

    def test_repr(self, paper_registry, paper_batches):
        miner = self.make_paper_miner(paper_registry, paper_batches)
        assert "window=2" in repr(miner)


class TestStreamOrdering:
    def test_add_batch_flushes_pending_first(self):
        """Interleaving add_transactions with add_batch keeps stream order."""
        miner = StreamSubgraphMiner(window_size=10, batch_size=100)
        miner.add_transactions([["a"], ["b"]])
        miner.add_batch(Batch([["c"]]))
        assert list(miner.matrix.transactions()) == [("a",), ("b",), ("c",)]
        assert miner.batches_consumed == 2

    def test_pending_transaction_count(self):
        miner = StreamSubgraphMiner(window_size=2, batch_size=4)
        miner.add_transactions([["a"], ["b"], ["c"]])
        assert miner.pending_transaction_count == 3
        assert miner.transaction_count == 0
        miner.flush_pending()
        assert miner.pending_transaction_count == 0
        assert miner.transaction_count == 3


class TestStorageBackends:
    def test_disk_storage_persists_segments(self, paper_registry, paper_batches, tmp_path):
        directory = tmp_path / "segments"
        miner = StreamSubgraphMiner(
            window_size=2,
            registry=paper_registry,
            storage="disk",
            storage_path=directory,
        )
        for batch in paper_batches:
            miner.add_batch(batch)
        assert (directory / "manifest.json").exists()
        assert len(list(directory.glob("seg-*.dsg"))) == 2

    def test_disk_storage_mining_matches_memory(self, paper_registry, paper_batches, tmp_path):
        results = {}
        for storage, path in (
            (None, None),
            ("disk", tmp_path / "segments"),
            ("single", tmp_path / "window.dsm"),
        ):
            miner = StreamSubgraphMiner(
                window_size=2,
                registry=paper_registry,
                storage=storage,
                storage_path=path,
            )
            for batch in paper_batches:
                miner.add_batch(batch)
            results[storage] = miner.mine(minsup=2).to_dict()
        assert results[None] == PAPER_CONNECTED_FREQUENT
        assert results["disk"] == results[None]
        assert results["single"] == results[None]
