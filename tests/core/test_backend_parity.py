"""All five algorithms return byte-identical results through every backend.

Acceptance test of the storage-engine refactor: a sliding-window
append+mine loop (window of 8, 50 batches, disk persistence on) must
produce the same :class:`~repro.core.patterns.MiningResult` — byte for
byte, via its JSON export — whether the window lives in a
``MemoryWindowStore``, a segmented ``DiskWindowStore`` or the legacy
single-file mirror, and must never rewrite the full matrix on the
segmented backend.
"""

import pytest

from repro.core.export import result_to_json
from repro.core.miner import StreamSubgraphMiner
from repro.datasets.random_graphs import GraphStreamGenerator, RandomGraphModel
from repro.storage.backend import DiskWindowStore

ALGORITHMS = (
    "fptree_multi",
    "fptree_single",
    "fptree_topdown",
    "vertical",
    "vertical_disk",
    "vertical_direct",
)

WINDOW_SIZE = 8
NUM_BATCHES = 50
BATCH_SIZE = 4


@pytest.fixture(scope="module")
def stream_fixture():
    model = RandomGraphModel(num_vertices=10, avg_fanout=3.0, seed=5)
    registry = model.registry()
    generator = GraphStreamGenerator(model, avg_edges_per_snapshot=4.0, seed=6)
    snapshots = list(generator.snapshots(NUM_BATCHES * BATCH_SIZE))
    return registry, snapshots


def mine_through(storage, storage_path, algorithm, stream_fixture):
    registry, snapshots = stream_fixture
    miner = StreamSubgraphMiner(
        window_size=WINDOW_SIZE,
        batch_size=BATCH_SIZE,
        algorithm=algorithm,
        registry=registry,
        storage=storage,
        storage_path=storage_path,
    )
    miner.add_snapshots(snapshots)
    result = miner.mine(minsup=2, connected_only=True)
    return miner, result


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_backends_yield_byte_identical_results(algorithm, stream_fixture, tmp_path):
    miner, memory_result = mine_through(None, None, algorithm, stream_fixture)
    _, disk_result = mine_through(
        "disk", tmp_path / "segments", algorithm, stream_fixture
    )
    _, single_result = mine_through(
        "single", tmp_path / "window.dsm", algorithm, stream_fixture
    )
    registry = miner.registry
    memory_json = result_to_json(memory_result, registry).encode("utf-8")
    assert result_to_json(disk_result, registry).encode("utf-8") == memory_json
    assert result_to_json(single_result, registry).encode("utf-8") == memory_json


def test_sliding_disk_loop_never_rewrites_full_matrix(stream_fixture, tmp_path):
    miner, result = mine_through(
        "disk", tmp_path / "segments", "vertical_direct", stream_fixture
    )
    store = miner.matrix.store
    assert isinstance(store, DiskWindowStore)
    assert store.io_stats.appends == NUM_BATCHES
    assert store.io_stats.full_rewrites == 0
    assert store.io_stats.segment_files_deleted == NUM_BATCHES - WINDOW_SIZE
    assert len(result) > 0
