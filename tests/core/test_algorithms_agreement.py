"""Cross-algorithm agreement on randomly generated graph streams.

This is the unit-test version of the paper's accuracy experiment: on random
graph streams all algorithms (and the brute-force reference) must return
identical results.  Includes a hypothesis-driven variant on tiny random
streams.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.algorithms import ALGORITHMS, get_algorithm
from repro.core.postprocess import filter_connected_patterns
from repro.datasets.random_graphs import GraphStreamGenerator, RandomGraphModel
from repro.graph.edge import Edge
from repro.graph.edge_registry import EdgeRegistry
from repro.storage.dsmatrix import DSMatrix
from repro.stream.batch import Batch
from repro.stream.stream import TransactionStream
from tests.helpers import (
    brute_force_connected_frequent,
    brute_force_frequent_itemsets,
)

NON_DIRECT = [name for name in sorted(ALGORITHMS) if name != "vertical_direct"]


def build_random_window(seed: int, num_snapshots: int = 60, batch_size: int = 10,
                        window_size: int = 3):
    model = RandomGraphModel(num_vertices=8, avg_fanout=3.0, seed=seed)
    registry = model.registry()
    generator = GraphStreamGenerator(model, avg_edges_per_snapshot=4.0, seed=seed + 1)
    transactions = [
        registry.encode(snapshot, register_new=False)
        for snapshot in generator.snapshots(num_snapshots)
    ]
    matrix = DSMatrix(window_size=window_size)
    for batch in TransactionStream(transactions, batch_size=batch_size).batches():
        matrix.append_batch(batch)
    window_transactions = list(matrix.transactions())
    return matrix, registry, window_transactions


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("minsup", [2, 5])
def test_non_direct_algorithms_match_brute_force(seed, minsup):
    matrix, registry, window_transactions = build_random_window(seed)
    expected = brute_force_frequent_itemsets(window_transactions, minsup)
    for name in NON_DIRECT:
        found = get_algorithm(name).mine(matrix, minsup, registry=registry)
        assert found == expected, name


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("minsup", [2, 5])
def test_direct_algorithm_matches_brute_force_connected(seed, minsup):
    matrix, registry, window_transactions = build_random_window(seed)
    expected = brute_force_connected_frequent(window_transactions, minsup, registry)
    found = get_algorithm("vertical_direct").mine(matrix, minsup, registry=registry)
    assert found == expected


@pytest.mark.parametrize("seed", [4, 5])
def test_direct_equals_vertical_plus_postprocessing(seed):
    matrix, registry, _ = build_random_window(seed)
    minsup = 3
    vertical = get_algorithm("vertical").mine(matrix, minsup, registry=registry)
    post = filter_connected_patterns(vertical, registry, rule="exact")
    direct = get_algorithm("vertical_direct").mine(matrix, minsup, registry=registry)
    assert direct == post


# ---------------------------------------------------------------------- #
# hypothesis: tiny random edge streams over a 4-vertex universe
# ---------------------------------------------------------------------- #
VERTICES = ["v1", "v2", "v3", "v4", "v5"]
ALL_EDGES = [
    Edge(VERTICES[i], VERTICES[j])
    for i in range(len(VERTICES))
    for j in range(i + 1, len(VERTICES))
]

edge_transactions = st.lists(
    st.sets(st.sampled_from(range(len(ALL_EDGES))), min_size=1, max_size=5),
    min_size=1,
    max_size=12,
)


@settings(max_examples=50, deadline=None)
@given(edge_transactions, st.integers(min_value=1, max_value=3))
def test_hypothesis_all_algorithms_agree(edge_index_sets, minsup):
    registry = EdgeRegistry.from_edges(ALL_EDGES)
    transactions = [
        tuple(sorted(registry.item_for(ALL_EDGES[index]) for index in index_set))
        for index_set in edge_index_sets
    ]
    matrix = DSMatrix(window_size=1)
    matrix.append_batch(Batch(transactions))

    expected_all = brute_force_frequent_itemsets(transactions, minsup)
    expected_connected = brute_force_connected_frequent(transactions, minsup, registry)

    for name in NON_DIRECT:
        assert get_algorithm(name).mine(matrix, minsup, registry=registry) == expected_all
    assert (
        get_algorithm("vertical_direct").mine(matrix, minsup, registry=registry)
        == expected_connected
    )
