"""All five algorithms reproduce the paper's running example exactly.

Examples 2-7 of the paper: with the window holding batches B2-B3 and
minsup = 2, the miners must find the 17 collections of frequent edges, of
which 15 are connected subgraphs.
"""

import pytest

from repro.core.algorithms import ALGORITHMS, get_algorithm
from repro.core.postprocess import filter_connected_patterns
from repro.datasets.paper_example import (
    PAPER_ALL_FREQUENT,
    PAPER_CONNECTED_FREQUENT,
)

NON_DIRECT = [name for name in sorted(ALGORITHMS) if name != "vertical_direct"]


@pytest.mark.parametrize("name", NON_DIRECT)
def test_all_collections_match_paper(name, paper_window_matrix, paper_registry):
    algorithm = get_algorithm(name)
    found = algorithm.mine(paper_window_matrix, 2, registry=paper_registry)
    assert found == PAPER_ALL_FREQUENT


@pytest.mark.parametrize("name", NON_DIRECT)
def test_postprocessed_connected_subgraphs_match_paper(
    name, paper_window_matrix, paper_registry
):
    algorithm = get_algorithm(name)
    found = algorithm.mine(paper_window_matrix, 2, registry=paper_registry)
    connected = filter_connected_patterns(found, paper_registry, rule="exact")
    assert connected == PAPER_CONNECTED_FREQUENT


def test_direct_algorithm_matches_paper(paper_window_matrix, paper_registry):
    algorithm = get_algorithm("vertical_direct")
    found = algorithm.mine(paper_window_matrix, 2, registry=paper_registry)
    assert found == PAPER_CONNECTED_FREQUENT


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_pattern_counts_of_the_paper(name, paper_window_matrix, paper_registry):
    # "a total of 5+7+1+3+1 = 17 collections" and "only 15 frequent connected
    # subgraphs are then returned to the user".
    algorithm = get_algorithm(name)
    found = algorithm.mine(paper_window_matrix, 2, registry=paper_registry)
    if algorithm.produces_connected_only:
        assert len(found) == 15
    else:
        assert len(found) == 17
        assert len(filter_connected_patterns(found, paper_registry)) == 15


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_higher_minsup_shrinks_results(name, paper_window_matrix, paper_registry):
    algorithm = get_algorithm(name)
    low = algorithm.mine(paper_window_matrix, 2, registry=paper_registry)
    high = algorithm.mine(paper_window_matrix, 4, registry=paper_registry)
    assert set(high) <= set(low)
    assert all(support >= 4 for support in high.values())


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_minsup_one_returns_every_observed_collection(
    name, paper_window_matrix, paper_registry
):
    algorithm = get_algorithm(name)
    found = algorithm.mine(paper_window_matrix, 1, registry=paper_registry)
    # Every single edge present in the window must be reported.
    for item, frequency in paper_window_matrix.item_frequencies().items():
        if frequency > 0:
            assert found[frozenset({item})] == frequency


def test_example7_direct_never_produces_disjoint_pairs(
    paper_window_matrix, paper_registry
):
    # Example 7: the direct algorithm never produces {a, f} even though both
    # edges are frequent, because f is not a neighbour of a.
    found = get_algorithm("vertical_direct").mine(
        paper_window_matrix, 2, registry=paper_registry
    )
    assert frozenset({"a", "f"}) not in found
    assert frozenset({"c", "d"}) not in found


def test_example5_pair_supports(paper_window_matrix, paper_registry):
    # Example 5: {a,c}:4, {a,d}:3, {a,f}:4.
    found = get_algorithm("vertical").mine(paper_window_matrix, 2, registry=paper_registry)
    assert found[frozenset({"a", "c"})] == 4
    assert found[frozenset({"a", "d"})] == 3
    assert found[frozenset({"a", "f"})] == 4
    assert found[frozenset({"b", "c"})] == 2
    assert found[frozenset({"d", "f"})] == 3
