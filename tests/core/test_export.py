"""Tests for JSON / CSV / DOT export of mining results."""

import csv
import io
import json

from repro.core.export import (
    pattern_to_dot,
    result_to_csv,
    result_to_dot,
    result_to_json,
)
from repro.core.miner import StreamSubgraphMiner
from repro.core.patterns import MiningResult
from repro.datasets.paper_example import paper_example_batches, paper_example_registry


def paper_result(connected=True):
    registry = paper_example_registry()
    miner = StreamSubgraphMiner(
        window_size=2, batch_size=3, algorithm="vertical", registry=registry
    )
    for batch in paper_example_batches():
        miner.add_batch(batch)
    result = miner.mine(minsup=2) if connected else miner.mine_all_collections(minsup=2)
    return result, registry


class TestJsonExport:
    def test_round_trips_through_json(self):
        result, registry = paper_result()
        payload = json.loads(result_to_json(result, registry))
        assert len(payload) == 15
        by_items = {tuple(record["items"]): record for record in payload}
        assert by_items[("a", "c")]["support"] == 4
        assert by_items[("a", "c")]["connected"] is True
        assert {"u", "v", "label"} <= set(by_items[("a", "c")]["edges"][0])

    def test_json_without_registry_or_edges(self):
        result = MiningResult.from_counts({frozenset({"x", "y"}): 3})
        payload = json.loads(result_to_json(result))
        assert payload[0]["items"] == ["x", "y"]
        assert "edges" not in payload[0]

    def test_compact_json(self):
        result, registry = paper_result()
        text = result_to_json(result, registry, indent=None)
        assert "\n" not in text


class TestCsvExport:
    def test_csv_structure(self):
        result, _registry = paper_result()
        rows = list(csv.reader(io.StringIO(result_to_csv(result))))
        assert rows[0] == ["items", "size", "support"]
        assert len(rows) == 1 + 15
        items_column = [row[0] for row in rows[1:]]
        assert "a;c" in items_column

    def test_csv_supports_are_integers(self):
        result, _registry = paper_result()
        rows = list(csv.reader(io.StringIO(result_to_csv(result))))
        for row in rows[1:]:
            assert int(row[2]) >= 2


class TestDotExport:
    def test_single_pattern_dot(self):
        result, registry = paper_result()
        pattern = next(p for p in result if p.sorted_items() == ("a", "c"))
        dot = pattern_to_dot(pattern, registry)
        assert dot.startswith("graph pattern {")
        assert '"v1" -- "v2"' in dot
        assert 'label="a"' in dot
        assert "support=4" in dot

    def test_pattern_without_edges_lists_items_as_nodes(self):
        result = MiningResult.from_counts({frozenset({"x", "y"}): 3})
        dot = pattern_to_dot(next(iter(result)))
        assert '"x";' in dot
        assert "--" not in dot

    def test_result_dot_clusters(self):
        result, registry = paper_result()
        dot = result_to_dot(result, registry, max_patterns=3)
        assert dot.count("subgraph cluster_") == 3
        assert dot.strip().endswith("}")

    def test_result_dot_handles_more_requested_than_available(self):
        result, registry = paper_result()
        dot = result_to_dot(result, registry, max_patterns=99)
        assert dot.count("subgraph cluster_") == 15
