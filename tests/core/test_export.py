"""Tests for JSON / CSV / DOT export of mining results."""

import csv
import io
import json

from repro.core.export import (
    pattern_to_dot,
    result_to_csv,
    result_to_dot,
    result_to_json,
)
from repro.core.miner import StreamSubgraphMiner
from repro.core.patterns import MiningResult
from repro.datasets.paper_example import paper_example_batches, paper_example_registry


def paper_result(connected=True):
    registry = paper_example_registry()
    miner = StreamSubgraphMiner(
        window_size=2, batch_size=3, algorithm="vertical", registry=registry
    )
    for batch in paper_example_batches():
        miner.add_batch(batch)
    result = miner.mine(minsup=2) if connected else miner.mine_all_collections(minsup=2)
    return result, registry


class TestJsonExport:
    def test_round_trips_through_json(self):
        result, registry = paper_result()
        payload = json.loads(result_to_json(result, registry))
        assert len(payload) == 15
        by_items = {tuple(record["items"]): record for record in payload}
        assert by_items[("a", "c")]["support"] == 4
        assert by_items[("a", "c")]["connected"] is True
        assert {"u", "v", "label"} <= set(by_items[("a", "c")]["edges"][0])

    def test_json_without_registry_or_edges(self):
        result = MiningResult.from_counts({frozenset({"x", "y"}): 3})
        payload = json.loads(result_to_json(result))
        assert payload[0]["items"] == ["x", "y"]
        assert "edges" not in payload[0]

    def test_compact_json(self):
        result, registry = paper_result()
        text = result_to_json(result, registry, indent=None)
        assert "\n" not in text


class TestCsvExport:
    def test_csv_structure(self):
        result, _registry = paper_result()
        rows = list(csv.reader(io.StringIO(result_to_csv(result))))
        assert rows[0] == ["items", "size", "support"]
        assert len(rows) == 1 + 15
        items_column = [row[0] for row in rows[1:]]
        assert "a;c" in items_column

    def test_csv_supports_are_integers(self):
        result, _registry = paper_result()
        rows = list(csv.reader(io.StringIO(result_to_csv(result))))
        for row in rows[1:]:
            assert int(row[2]) >= 2


class TestEmptyResultExport:
    """Every exporter must handle a result with no patterns gracefully."""

    def test_empty_json_is_an_empty_list(self):
        empty = MiningResult([])
        assert json.loads(result_to_json(empty)) == []
        assert json.loads(result_to_json(empty, paper_example_registry())) == []

    def test_empty_csv_is_header_only(self):
        rows = list(csv.reader(io.StringIO(result_to_csv(MiningResult([])))))
        assert rows == [["items", "size", "support"]]

    def test_empty_dot_is_an_empty_graph(self):
        dot = result_to_dot(MiningResult([]))
        assert dot.startswith("graph patterns {")
        assert "subgraph" not in dot
        assert dot.strip().endswith("}")


class TestSingleEdgePatternExport:
    def test_single_edge_round_trips_through_every_format(self):
        registry = paper_example_registry()
        result = MiningResult.from_counts({frozenset({"a"}): 5}, registry=registry)
        payload = json.loads(result_to_json(result, registry))
        assert payload == [
            {
                "items": ["a"],
                "support": 5,
                "size": 1,
                "edges": [{"u": "v1", "v": "v2", "label": None}],
                "connected": True,
            }
        ]
        rows = list(csv.reader(io.StringIO(result_to_csv(result))))
        assert rows[1] == ["a", "1", "5"]
        dot = result_to_dot(result, registry)
        assert dot.count("subgraph cluster_") == 1
        single = pattern_to_dot(next(iter(result)), registry)
        assert '"v1" -- "v2"' in single


class TestCsvEscaping:
    def test_items_with_commas_and_quotes_are_escaped(self):
        """Items may be arbitrary symbols (e.g. RDF IRIs with commas)."""
        nasty = 'edge,"quoted"'
        result = MiningResult.from_counts(
            {frozenset({nasty, "plain"}): 2, frozenset({"semi;colon"}): 3}
        )
        rendered = result_to_csv(result)
        rows = list(csv.reader(io.StringIO(rendered)))
        assert rows[0] == ["items", "size", "support"]
        items_column = {row[0] for row in rows[1:]}
        # csv.reader round-trips the escaping, restoring the raw symbols.
        assert f'{nasty};plain' in items_column
        assert "semi;colon" in items_column
        # The raw rendering must quote the cell holding the comma/quote.
        assert '"' in rendered.splitlines()[1] + rendered.splitlines()[2]

    def test_newline_in_item_survives_round_trip(self):
        weird = "line\nbreak"
        result = MiningResult.from_counts({frozenset({weird}): 1})
        rows = list(csv.reader(io.StringIO(result_to_csv(result))))
        assert rows[1][0] == weird


class TestDotExport:
    def test_single_pattern_dot(self):
        result, registry = paper_result()
        pattern = next(p for p in result if p.sorted_items() == ("a", "c"))
        dot = pattern_to_dot(pattern, registry)
        assert dot.startswith("graph pattern {")
        assert '"v1" -- "v2"' in dot
        assert 'label="a"' in dot
        assert "support=4" in dot

    def test_pattern_without_edges_lists_items_as_nodes(self):
        result = MiningResult.from_counts({frozenset({"x", "y"}): 3})
        dot = pattern_to_dot(next(iter(result)))
        assert '"x";' in dot
        assert "--" not in dot

    def test_result_dot_clusters(self):
        result, registry = paper_result()
        dot = result_to_dot(result, registry, max_patterns=3)
        assert dot.count("subgraph cluster_") == 3
        assert dot.strip().endswith("}")

    def test_result_dot_handles_more_requested_than_available(self):
        result, registry = paper_result()
        dot = result_to_dot(result, registry, max_patterns=99)
        assert dot.count("subgraph cluster_") == 15
