"""Unit tests for repro.core.algorithms.base (stats, minsup resolution, registry)."""

import pytest

from repro.core.algorithms import ALGORITHMS, ALL_MINERS, get_algorithm
from repro.core.algorithms.base import MiningStats, resolve_minsup
from repro.exceptions import InvalidSupportError, MiningError


class TestResolveMinsup:
    def test_absolute_integer_passthrough(self):
        assert resolve_minsup(3, 100) == 3
        assert resolve_minsup(1, 0) == 1

    def test_relative_fraction_uses_ceiling(self):
        assert resolve_minsup(0.1, 100) == 10
        assert resolve_minsup(0.101, 100) == 11
        assert resolve_minsup(0.5, 7) == 4

    def test_relative_fraction_never_below_one(self):
        assert resolve_minsup(0.001, 10) == 1

    def test_float_of_integral_value_treated_as_absolute(self):
        assert resolve_minsup(5.0, 100) == 5

    def test_non_integral_absolute_rejected(self):
        with pytest.raises(InvalidSupportError):
            resolve_minsup(2.5, 100)

    def test_zero_and_negative_rejected(self):
        with pytest.raises(InvalidSupportError):
            resolve_minsup(0, 100)
        with pytest.raises(InvalidSupportError):
            resolve_minsup(-1, 100)

    def test_boolean_rejected(self):
        with pytest.raises(InvalidSupportError):
            resolve_minsup(True, 100)


class TestMiningStats:
    def test_as_dict_flattens_extra(self):
        stats = MiningStats(fptrees_built=2, extra={"custom": 7})
        flat = stats.as_dict()
        assert flat["fptrees_built"] == 2
        assert flat["custom"] == 7

    def test_defaults_are_zero(self):
        stats = MiningStats()
        assert stats.patterns_found == 0
        assert stats.bitvector_intersections == 0


class TestAlgorithmRegistry:
    def test_registered_algorithms(self):
        assert set(ALGORITHMS) == {
            "fptree_multi",
            "fptree_single",
            "fptree_topdown",
            "vertical",
            "vertical_disk",
            "vertical_direct",
        }

    def test_all_miners_include_baselines(self):
        assert {"dstree", "dstable"} <= set(ALL_MINERS)

    def test_get_algorithm_unknown_name(self):
        with pytest.raises(MiningError):
            get_algorithm("nope")

    def test_get_algorithm_returns_fresh_instances(self):
        assert get_algorithm("vertical") is not get_algorithm("vertical")

    def test_only_direct_algorithm_is_connected_only(self):
        for name, cls in ALGORITHMS.items():
            assert cls.produces_connected_only == (name == "vertical_direct")

    def test_reset_stats(self, paper_window_matrix, paper_registry):
        algorithm = get_algorithm("vertical")
        algorithm.mine(paper_window_matrix, 2, registry=paper_registry)
        assert algorithm.stats.patterns_found > 0
        algorithm.reset_stats()
        assert algorithm.stats.patterns_found == 0

    def test_repr(self):
        assert "VerticalMiner" in repr(get_algorithm("vertical"))
