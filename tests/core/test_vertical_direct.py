"""Focused tests for the direct algorithm (§4) and its instrumentation."""

import pytest

from repro.core.algorithms import get_algorithm
from repro.exceptions import MiningError
from repro.graph.edge import Edge
from repro.graph.edge_registry import EdgeRegistry
from repro.storage.dsmatrix import DSMatrix
from repro.stream.batch import Batch


def window_from_edge_transactions(registry, edge_transactions):
    transactions = [
        tuple(sorted(registry.item_for(edge) for edge in edges))
        for edges in edge_transactions
    ]
    matrix = DSMatrix(window_size=1)
    matrix.append_batch(Batch(transactions))
    return matrix


class TestDirectAlgorithm:
    def test_requires_registry(self, paper_window_matrix):
        with pytest.raises(MiningError):
            get_algorithm("vertical_direct").mine(paper_window_matrix, 2, registry=None)

    def test_every_result_is_connected(self, paper_window_matrix, paper_registry):
        found = get_algorithm("vertical_direct").mine(
            paper_window_matrix, 2, registry=paper_registry
        )
        from repro.graph.connectivity import is_connected_edge_set

        for items in found:
            assert is_connected_edge_set(paper_registry.decode(items))

    def test_long_path_patterns_found(self):
        # A path graph a-b-c-d-e repeated: the full path must be discovered
        # even though only consecutive edges share vertices.
        registry = EdgeRegistry()
        path_edges = [Edge(f"n{i}", f"n{i + 1}") for i in range(5)]
        for edge in path_edges:
            registry.register(edge)
        matrix = window_from_edge_transactions(registry, [path_edges] * 3)
        found = get_algorithm("vertical_direct").mine(matrix, 2, registry=registry)
        full_path = frozenset(registry.item_for(edge) for edge in path_edges)
        assert full_path in found
        assert found[full_path] == 3

    def test_star_pattern_found_from_any_spoke(self):
        registry = EdgeRegistry()
        spokes = [Edge("hub", f"leaf{i}") for i in range(4)]
        for edge in spokes:
            registry.register(edge)
        matrix = window_from_edge_transactions(registry, [spokes, spokes])
        found = get_algorithm("vertical_direct").mine(matrix, 2, registry=registry)
        assert frozenset(registry.item_for(edge) for edge in spokes) in found

    def test_disconnected_cooccurrence_excluded_but_components_found(self):
        registry = EdgeRegistry()
        left = Edge("a1", "a2")
        right = Edge("b1", "b2")
        bridgeless = [left, right]
        for edge in bridgeless:
            registry.register(edge)
        matrix = window_from_edge_transactions(registry, [bridgeless] * 4)
        found = get_algorithm("vertical_direct").mine(matrix, 2, registry=registry)
        items = {registry.item_for(left)}, {registry.item_for(right)}
        assert frozenset(items[0]) in found
        assert frozenset(items[1]) in found
        assert frozenset(items[0] | items[1]) not in found

    def test_intersection_counter_incremented(self, paper_window_matrix, paper_registry):
        algorithm = get_algorithm("vertical_direct")
        algorithm.mine(paper_window_matrix, 2, registry=paper_registry)
        assert algorithm.stats.bitvector_intersections > 0
        assert algorithm.stats.patterns_found == 15

    def test_direct_skips_intersections_between_disjoint_edges(self):
        # The point of §4: pruning early avoids intersecting non-neighbouring
        # edges.  With six pairwise-disjoint frequent edges that always
        # co-occur, the post-processing approach intersects every combination
        # (2^6 - 6 - 1 of them) while the direct algorithm does none at all.
        registry = EdgeRegistry()
        disjoint = [Edge(f"u{i}", f"w{i}") for i in range(6)]
        for edge in disjoint:
            registry.register(edge)
        matrix = window_from_edge_transactions(registry, [disjoint] * 3)

        vertical = get_algorithm("vertical")
        vertical.mine(matrix, 2, registry=registry)
        direct = get_algorithm("vertical_direct")
        direct.mine(matrix, 2, registry=registry)

        assert direct.stats.bitvector_intersections == 0
        assert vertical.stats.bitvector_intersections == 2 ** 6 - 6 - 1
        assert direct.stats.patterns_found == 6  # singletons only

    def test_empty_window(self, paper_registry):
        matrix = DSMatrix(window_size=1)
        matrix.append_batch(Batch([]))
        found = get_algorithm("vertical_direct").mine(matrix, 1, registry=paper_registry)
        assert found == {}
