"""Tests for the disk-resident vertical miner (`vertical_disk`)."""

import pytest

from repro.core.algorithms import get_algorithm
from repro.datasets.paper_example import PAPER_ALL_FREQUENT, paper_example_batches
from repro.storage.dsmatrix import DSMatrix


@pytest.fixture
def persisted_paper_matrix(paper_batches, tmp_path):
    """The paper-example window persisted to (and kept on) disk."""
    matrix = DSMatrix(window_size=2, path=tmp_path / "window.dsm")
    for batch in paper_batches:
        matrix.append_batch(batch)
    return matrix


class TestVerticalDiskMiner:
    def test_matches_paper_example_from_disk(self, persisted_paper_matrix, paper_registry):
        algorithm = get_algorithm("vertical_disk")
        found = algorithm.mine(persisted_paper_matrix, 2, registry=paper_registry)
        assert found == PAPER_ALL_FREQUENT

    def test_reads_rows_from_disk(self, persisted_paper_matrix, paper_registry):
        algorithm = get_algorithm("vertical_disk")
        algorithm.mine(persisted_paper_matrix, 2, registry=paper_registry)
        assert algorithm.stats.extra["rows_read_from_disk"] > 0

    def test_falls_back_to_memory_without_a_path(self, paper_window_matrix, paper_registry):
        algorithm = get_algorithm("vertical_disk")
        found = algorithm.mine(paper_window_matrix, 2, registry=paper_registry)
        assert found == PAPER_ALL_FREQUENT
        assert algorithm.stats.extra["rows_read_from_disk"] == 0

    def test_agrees_with_in_memory_vertical_miner(self, persisted_paper_matrix, paper_registry):
        for minsup in (1, 2, 3, 4, 5):
            from_disk = get_algorithm("vertical_disk").mine(
                persisted_paper_matrix, minsup, registry=paper_registry
            )
            in_memory = get_algorithm("vertical").mine(
                persisted_paper_matrix, minsup, registry=paper_registry
            )
            assert from_disk == in_memory

    def test_intersection_counter(self, persisted_paper_matrix, paper_registry):
        algorithm = get_algorithm("vertical_disk")
        algorithm.mine(persisted_paper_matrix, 2, registry=paper_registry)
        assert algorithm.stats.bitvector_intersections > 0
        assert algorithm.stats.patterns_found == len(PAPER_ALL_FREQUENT)

    def test_stale_path_fallback(self, paper_batches, tmp_path, paper_registry):
        # If the configured file vanished, the miner still works from memory.
        path = tmp_path / "gone.dsm"
        matrix = DSMatrix(window_size=2, path=path)
        for batch in paper_batches:
            matrix.append_batch(batch)
        path.unlink()
        found = get_algorithm("vertical_disk").mine(matrix, 2, registry=paper_registry)
        assert found == PAPER_ALL_FREQUENT
