"""Unit tests for repro.core.postprocess (the §3.5 pruning step)."""

import pytest

from repro.core.postprocess import filter_connected_patterns, is_connected_itemset
from repro.datasets.paper_example import (
    PAPER_ALL_FREQUENT,
    PAPER_CONNECTED_FREQUENT,
    PAPER_DISCONNECTED,
)
from repro.exceptions import MiningError
from repro.graph.edge import Edge
from repro.graph.edge_registry import EdgeRegistry


class TestIsConnectedItemset:
    def test_singletons_connected(self, paper_registry):
        for item in paper_registry.items():
            assert is_connected_itemset(frozenset({item}), paper_registry)

    def test_paper_example6_cases(self, paper_registry):
        assert is_connected_itemset(frozenset({"a", "c"}), paper_registry)
        assert not is_connected_itemset(frozenset({"a", "f"}), paper_registry)
        assert not is_connected_itemset(frozenset({"c", "d"}), paper_registry)

    def test_unknown_rule_rejected(self, paper_registry):
        with pytest.raises(MiningError):
            is_connected_itemset(frozenset({"a"}), paper_registry, rule="bogus")

    def test_paper_rule_vs_exact_divergence(self):
        # Two disjoint triangles: the paper rule keeps them, exact does not.
        registry = EdgeRegistry()
        triangle_one = [Edge("x1", "x2"), Edge("x2", "x3"), Edge("x1", "x3")]
        triangle_two = [Edge("y1", "y2"), Edge("y2", "y3"), Edge("y1", "y3")]
        items = frozenset(
            registry.register(edge) for edge in triangle_one + triangle_two
        )
        assert is_connected_itemset(items, registry, rule="paper")
        assert not is_connected_itemset(items, registry, rule="exact")


class TestFilterConnectedPatterns:
    def test_paper_example_prunes_exactly_two(self, paper_registry):
        filtered = filter_connected_patterns(PAPER_ALL_FREQUENT, paper_registry)
        assert filtered == PAPER_CONNECTED_FREQUENT
        assert len(PAPER_ALL_FREQUENT) - len(filtered) == len(PAPER_DISCONNECTED)

    def test_paper_rule_gives_same_result_on_paper_example(self, paper_registry):
        exact = filter_connected_patterns(PAPER_ALL_FREQUENT, paper_registry, rule="exact")
        paper = filter_connected_patterns(PAPER_ALL_FREQUENT, paper_registry, rule="paper")
        assert exact == paper

    def test_supports_preserved(self, paper_registry):
        filtered = filter_connected_patterns(PAPER_ALL_FREQUENT, paper_registry)
        for items, support in filtered.items():
            assert PAPER_ALL_FREQUENT[items] == support

    def test_empty_input(self, paper_registry):
        assert filter_connected_patterns({}, paper_registry) == {}
