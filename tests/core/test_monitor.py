"""Tests for the continuous pattern monitor (window deltas)."""

import pytest

from repro.core.miner import StreamSubgraphMiner
from repro.core.monitor import PatternMonitor, WindowDelta
from repro.datasets.paper_example import paper_example_batches, paper_example_registry
from repro.exceptions import MiningError
from repro.graph.edge import Edge
from repro.graph.edge_registry import EdgeRegistry
from repro.stream.batch import Batch


def make_monitor(every_batches=1, minsup=2, window_size=2):
    registry = paper_example_registry()
    miner = StreamSubgraphMiner(
        window_size=window_size, batch_size=3, algorithm="vertical", registry=registry
    )
    return PatternMonitor(miner, minsup=minsup, every_batches=every_batches)


class TestPatternMonitor:
    def test_invalid_cadence(self):
        with pytest.raises(MiningError):
            make_monitor(every_batches=0)

    def test_delta_produced_per_batch_by_default(self):
        monitor = make_monitor()
        deltas = monitor.observe_stream(paper_example_batches())
        assert len(deltas) == 3
        assert all(isinstance(delta, WindowDelta) for delta in deltas)
        assert [d.batch_index for d in deltas] == [1, 2, 3]

    def test_cadence_skips_intermediate_batches(self):
        monitor = make_monitor(every_batches=2)
        batches = paper_example_batches()
        assert monitor.observe_batch(batches[0]) is None
        assert monitor.observe_batch(batches[1]) is not None
        assert monitor.observe_batch(batches[2]) is None

    def test_first_delta_reports_everything_as_emerged(self):
        monitor = make_monitor()
        delta = monitor.observe_batch(paper_example_batches()[0])
        assert delta.faded == {}
        assert delta.support_changes == {}
        assert len(delta.emerged) == len(delta.result)

    def test_final_window_matches_direct_mining(self):
        monitor = make_monitor()
        deltas = monitor.observe_stream(paper_example_batches())
        final = deltas[-1]
        assert monitor.last_result == final.result.to_dict()
        # The final window (B2-B3) is the paper's 15-connected-subgraph window.
        assert len(final.result) == 15

    def test_emerged_and_faded_track_window_slides(self):
        monitor = make_monitor()
        deltas = monitor.observe_stream(paper_example_batches())
        second, third = deltas[1], deltas[2]
        # Edge e is frequent in the B1-B2 window but not in B2-B3.
        assert frozenset({"e"}) in second.result.to_dict()
        assert frozenset({"e"}) in third.faded
        # Everything reported as emerged is indeed in the new result.
        for items in third.emerged:
            assert items in third.result.to_dict()

    def test_support_changes_have_old_and_new_values(self):
        monitor = make_monitor()
        deltas = monitor.observe_stream(paper_example_batches())
        for delta in deltas[1:]:
            for items, (old, new) in delta.support_changes.items():
                assert old != new
                assert delta.result.to_dict()[items] == new

    def test_stable_window_reports_no_changes(self):
        registry = EdgeRegistry()
        pair = [Edge("x", "y"), Edge("y", "z")]
        for edge in pair:
            registry.register(edge)
        miner = StreamSubgraphMiner(
            window_size=2, batch_size=2, algorithm="vertical", registry=registry
        )
        monitor = PatternMonitor(miner, minsup=2)
        transaction = tuple(registry.item_for(edge) for edge in pair)
        batch = Batch([transaction] * 2)
        monitor.observe_batch(batch)
        monitor.observe_batch(batch)
        delta = monitor.observe_batch(batch)
        assert delta.is_stable
        assert "0 faded" in delta.summary()

    def test_force_mine(self):
        monitor = make_monitor(every_batches=10)
        batches = paper_example_batches()
        assert monitor.observe_batch(batches[0]) is None
        delta = monitor.force_mine()
        assert delta.batch_index == 1
        assert len(monitor.deltas) == 1

    def test_summary_mentions_counts(self):
        monitor = make_monitor()
        delta = monitor.observe_batch(paper_example_batches()[0])
        assert "emerged" in delta.summary()
        assert f"batch {delta.batch_index}" in delta.summary()
