"""Unit tests for the DSTree / DSTable baseline miners (§2.1-§2.2)."""

import pytest

from repro.core.algorithms.baselines import DSTableMiner, DSTreeMiner
from repro.datasets.paper_example import PAPER_ALL_FREQUENT
from repro.exceptions import MiningError
from tests.helpers import brute_force_frequent_itemsets, transactions_from_batches


@pytest.mark.parametrize("miner_cls", [DSTreeMiner, DSTableMiner])
class TestBaselines:
    def test_paper_example(self, miner_cls, paper_batches):
        miner = miner_cls(window_size=2)
        for batch in paper_batches:
            miner.append_batch(batch)
        assert miner.mine(2) == PAPER_ALL_FREQUENT

    def test_matches_brute_force_on_full_stream(self, miner_cls, paper_batches):
        miner = miner_cls(window_size=3)
        for batch in paper_batches:
            miner.append_batch(batch)
        expected = brute_force_frequent_itemsets(
            transactions_from_batches(paper_batches), 3
        )
        assert miner.mine(3) == expected

    def test_invalid_minsup(self, miner_cls, paper_batches):
        miner = miner_cls(window_size=2)
        miner.append_batch(paper_batches[0])
        with pytest.raises(MiningError):
            miner.mine(0)

    def test_stats_populated(self, miner_cls, paper_batches):
        miner = miner_cls(window_size=2)
        for batch in paper_batches:
            miner.append_batch(batch)
        miner.mine(2)
        assert miner.stats.patterns_found == len(PAPER_ALL_FREQUENT)
        assert miner.stats.fptrees_built >= 1

    def test_structure_exposed(self, miner_cls, paper_batches):
        miner = miner_cls(window_size=2)
        miner.append_batch(paper_batches[0])
        assert miner.structure is not None


class TestBaselineSpecifics:
    def test_dstree_extra_stats_report_tree_size(self, paper_batches):
        miner = DSTreeMiner(window_size=2)
        for batch in paper_batches:
            miner.append_batch(batch)
        miner.mine(2)
        assert miner.stats.extra["dstree_nodes"] > 0

    def test_dstable_extra_stats_report_pointer_count(self, paper_batches):
        miner = DSTableMiner(window_size=2)
        for batch in paper_batches:
            miner.append_batch(batch)
        miner.mine(2)
        assert miner.stats.extra["dstable_pointers"] > 0

    def test_names(self):
        assert DSTreeMiner.name == "dstree"
        assert DSTableMiner.name == "dstable"
