"""Unit tests for repro.fptree.projected."""

import pytest

from repro.exceptions import MiningError
from repro.fptree.projected import (
    filter_and_order_transactions,
    normalise_weighted,
    weighted_item_frequencies,
)


class TestNormaliseWeighted:
    def test_plain_transactions_get_count_one(self):
        assert normalise_weighted([["a", "b"], ("c",)]) == [(("a", "b"), 1), (("c",), 1)]

    def test_weighted_transactions_pass_through(self):
        assert normalise_weighted([(("a", "b"), 3)]) == [(("a", "b"), 3)]

    def test_mixed_input(self):
        result = normalise_weighted([["a"], (("b",), 2)])
        assert result == [(("a",), 1), (("b",), 2)]

    def test_string_not_mistaken_for_weighted_pair(self):
        # A 2-item transaction of plain strings must not be parsed as (items, count).
        assert normalise_weighted([("ab", 1)]) != [(("a", "b"), 1)]


class TestWeightedItemFrequencies:
    def test_counts_weighted(self):
        counts = weighted_item_frequencies([(("a", "b"), 2), (("a",), 3)])
        assert counts["a"] == 5
        assert counts["b"] == 2

    def test_duplicate_items_in_one_transaction_counted_once(self):
        counts = weighted_item_frequencies([(("a", "a", "b"), 2)])
        assert counts["a"] == 2


class TestFilterAndOrder:
    def test_infrequent_items_removed(self):
        ordered, frequent = filter_and_order_transactions(
            [(("a", "b"), 1), (("a", "c"), 1), (("a",), 1)], minsup=2
        )
        assert frequent == {"a": 3}
        assert ordered == [(("a",), 1), (("a",), 1), (("a",), 1)]

    def test_canonical_order(self):
        ordered, _ = filter_and_order_transactions(
            [(("c", "a", "b"), 1), (("b", "a"), 1)], minsup=1
        )
        assert ordered[0][0] == ("a", "b", "c")

    def test_frequency_order_breaks_ties_lexicographically(self):
        ordered, _ = filter_and_order_transactions(
            [(("a", "b", "c"), 1), (("b", "c"), 1)], minsup=1, order="frequency"
        )
        # b and c both have frequency 2 > a's 1; ties broken alphabetically.
        assert ordered[0][0] == ("b", "c", "a")

    def test_empty_transactions_dropped(self):
        ordered, _ = filter_and_order_transactions([(("x",), 1), ((), 1)], minsup=2)
        assert ordered == []

    def test_invalid_minsup(self):
        with pytest.raises(MiningError):
            filter_and_order_transactions([], minsup=0)

    def test_invalid_order(self):
        with pytest.raises(MiningError):
            filter_and_order_transactions([], minsup=1, order="bogus")
