"""Unit tests for repro.fptree.fpgrowth."""

import pytest

from repro.exceptions import MiningError
from repro.fptree.fpgrowth import FPGrowth, fp_growth
from repro.fptree.tree import FPTree
from tests.helpers import brute_force_frequent_itemsets

SIMPLE_DB = [
    ["a", "b", "c"],
    ["a", "b"],
    ["a", "c"],
    ["b", "c"],
    ["a", "b", "c", "d"],
]


class TestFPGrowthCorrectness:
    def test_matches_brute_force_on_simple_db(self):
        for minsup in (1, 2, 3, 4):
            assert fp_growth(SIMPLE_DB, minsup) == brute_force_frequent_itemsets(
                SIMPLE_DB, minsup
            )

    def test_frequency_order_gives_same_result(self):
        canonical = fp_growth(SIMPLE_DB, 2, order="canonical")
        frequency = fp_growth(SIMPLE_DB, 2, order="frequency")
        assert canonical == frequency

    def test_weighted_transactions(self):
        weighted = [(("a", "b"), 3), (("a",), 2), (("b", "c"), 1)]
        result = fp_growth(weighted, 2)
        assert result[frozenset({"a"})] == 5
        assert result[frozenset({"a", "b"})] == 3
        assert frozenset({"c"}) not in result

    def test_suffix_is_added_to_every_pattern(self):
        result = fp_growth([["b", "c"], ["b"]], minsup=1, suffix={"a"})
        assert frozenset({"a", "b"}) in result
        assert frozenset({"a", "b", "c"}) in result
        assert all("a" in pattern for pattern in result)

    def test_empty_database(self):
        assert fp_growth([], minsup=1) == {}

    def test_minsup_larger_than_database(self):
        assert fp_growth(SIMPLE_DB, minsup=10) == {}

    def test_paper_projection_example(self, paper_window_matrix):
        # Example 2/3: mining the {a}-projected database with minsup 2 yields
        # the seven non-singleton patterns containing a.
        projected = paper_window_matrix.projected_transactions("a")
        result = fp_growth(projected, minsup=2, suffix={"a"})
        expected = {
            frozenset({"a", "c"}): 4,
            frozenset({"a", "c", "d"}): 2,
            frozenset({"a", "c", "d", "f"}): 2,
            frozenset({"a", "c", "f"}): 3,
            frozenset({"a", "d"}): 3,
            frozenset({"a", "d", "f"}): 3,
            frozenset({"a", "f"}): 4,
        }
        assert result == expected


class TestFPGrowthInstrumentation:
    def test_invalid_minsup(self):
        with pytest.raises(MiningError):
            FPGrowth(minsup=0)

    def test_tree_counters_increase(self):
        miner = FPGrowth(minsup=1)
        miner.mine(SIMPLE_DB)
        assert miner.trees_built >= 1
        assert miner.max_concurrent_trees >= 1
        assert miner.max_tree_nodes >= 1

    def test_reset_stats(self):
        miner = FPGrowth(minsup=1)
        miner.mine(SIMPLE_DB)
        miner.reset_stats()
        assert miner.trees_built == 0
        assert miner.max_concurrent_trees == 0

    def test_concurrent_trees_reflect_recursion_depth(self):
        # A chain-shaped database forces deep recursion: a,b,c,d all nested.
        chain = [["a", "b", "c", "d"]] * 3
        miner = FPGrowth(minsup=1)
        miner.mine(chain)
        assert miner.max_concurrent_trees >= 3

    def test_mine_tree_entry_point(self):
        tree = FPTree.build(SIMPLE_DB, minsup=2)
        miner = FPGrowth(minsup=2)
        from_tree = miner.mine_tree(tree)
        assert from_tree == fp_growth(SIMPLE_DB, 2)

    def test_minsup_property(self):
        assert FPGrowth(minsup=3).minsup == 3
