"""Unit tests for repro.fptree.topdown (top-down single-tree mining, §3.3)."""

import pytest

from repro.exceptions import MiningError
from repro.fptree.fpgrowth import fp_growth
from repro.fptree.topdown import top_down_mine
from repro.fptree.tree import FPTree
from tests.helpers import brute_force_frequent_itemsets


class TestTopDownMine:
    def test_invalid_minsup(self):
        tree = FPTree.build([["a"]], minsup=1)
        with pytest.raises(MiningError):
            top_down_mine(tree, 0)

    def test_empty_tree(self):
        assert top_down_mine(FPTree.build([], minsup=1), 1) == {}

    def test_matches_fp_growth_on_projection(self, paper_window_matrix):
        projected = paper_window_matrix.projected_transactions("a")
        tree = FPTree.build(projected, minsup=2, order="canonical")
        assert top_down_mine(tree, 2, suffix={"a"}) == fp_growth(
            projected, 2, suffix={"a"}
        )

    def test_matches_brute_force_without_suffix(self):
        db = [["a", "b", "c"], ["b", "c"], ["a", "c"], ["c", "d"], ["a", "b"]]
        tree = FPTree.build(db, minsup=2, order="canonical")
        assert top_down_mine(tree, 2) == brute_force_frequent_itemsets(db, 2)

    def test_supports_weighted_tree_content(self):
        weighted = [(("a", "b"), 2), (("a", "b", "c"), 3), (("b", "c"), 1)]
        tree = FPTree.build(weighted, minsup=2, order="canonical")
        result = top_down_mine(tree, 2)
        assert result[frozenset({"a", "b"})] == 5
        assert result[frozenset({"b", "c"})] == 4
        assert result[frozenset({"a", "b", "c"})] == 3

    def test_suffix_present_in_all_patterns(self):
        tree = FPTree.build([["x", "y"], ["x"]], minsup=1)
        result = top_down_mine(tree, 1, suffix={"base"})
        assert all("base" in pattern for pattern in result)
