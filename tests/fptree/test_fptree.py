"""Unit tests for repro.fptree.tree.FPTree and repro.fptree.node.FPNode."""

import pytest

from repro.exceptions import MiningError
from repro.fptree.node import FPNode
from repro.fptree.tree import FPTree


@pytest.fixture
def paper_a_tree(paper_window_matrix):
    """The FP-tree of the {a}-projected database from Example 3."""
    projected = paper_window_matrix.projected_transactions("a")
    return FPTree.build(projected, minsup=1, order="canonical")


class TestFPNode:
    def test_root_detection(self):
        root = FPNode(None)
        child = FPNode("a", 1, parent=root)
        assert root.is_root()
        assert not child.is_root()

    def test_prefix_path_and_depth(self):
        root = FPNode(None)
        a = FPNode("a", 1, parent=root)
        b = FPNode("b", 1, parent=a)
        c = FPNode("c", 1, parent=b)
        assert c.prefix_path() == ["a", "b"]
        assert c.depth() == 2
        assert a.prefix_path() == []

    def test_repr(self):
        assert "item='a'" in repr(FPNode("a", 2))


class TestBuild:
    def test_invalid_minsup(self):
        with pytest.raises(MiningError):
            FPTree.build([["a"]], minsup=0)
        with pytest.raises(MiningError):
            FPTree(minsup=0)

    def test_empty_tree(self):
        tree = FPTree.build([], minsup=1)
        assert tree.is_empty()
        assert tree.items() == []

    def test_counts_accumulate_along_shared_prefixes(self):
        tree = FPTree.build([["a", "b"], ["a", "b", "c"], ["a"]], minsup=1)
        a_nodes = tree.nodes_of("a")
        assert len(a_nodes) == 1
        assert a_nodes[0].count == 3
        assert tree.support("a") == 3

    def test_infrequent_items_excluded(self):
        tree = FPTree.build([["a", "x"], ["a", "y"]], minsup=2)
        assert tree.items() == ["a"]
        assert tree.nodes_of("x") == []

    def test_weighted_transactions(self):
        tree = FPTree.build([(("a", "b"), 3), (("a",), 2)], minsup=1)
        assert tree.support("a") == 5
        assert tree.support("b") == 3

    def test_frequency_order_places_frequent_items_first(self):
        tree = FPTree.build(
            [["a", "z"], ["b", "z"], ["c", "z"]], minsup=1, order="frequency"
        )
        assert tree.items()[0] == "z"
        # Every branch starts with the most frequent item, so z has one node.
        assert len(tree.nodes_of("z")) == 1


class TestPaperExampleTree:
    def test_branch_structure_of_example3(self, paper_a_tree):
        # The {a}-projected database of Example 3 in canonical item order:
        # {c,d,f} x2, {d,e,f}, {b,c}, {c,f}.
        branches = {tuple(items): count for items, count in paper_a_tree.branches()}
        assert branches == {
            ("b", "c"): 1,
            ("c", "d", "f"): 2,
            ("c", "f"): 1,
            ("d", "e", "f"): 1,
        }
        # Node counts along the c branch match the paper.
        c_nodes = paper_a_tree.nodes_of("c")
        assert sum(node.count for node in c_nodes) == 4

    def test_supports_match_projection(self, paper_a_tree):
        assert paper_a_tree.support("c") == 4
        assert paper_a_tree.support("d") == 3
        assert paper_a_tree.support("f") == 4
        assert paper_a_tree.support("b") == 1

    def test_items_bottom_up_reverses_order(self, paper_a_tree):
        assert paper_a_tree.items_bottom_up() == list(reversed(paper_a_tree.items()))


class TestFPGrowthPrimitives:
    def test_conditional_pattern_base(self):
        tree = FPTree.build([["a", "b", "c"], ["a", "c"], ["b", "c"]], minsup=1)
        base = tree.conditional_pattern_base("c")
        assert sorted(base) == [(("a",), 1), (("a", "b"), 1), (("b",), 1)]

    def test_conditional_tree_filters_by_minsup(self):
        tree = FPTree.build([["a", "b", "c"], ["a", "c"], ["b", "c"]], minsup=1)
        conditional = tree.conditional_tree("c", minsup=2)
        assert set(conditional.items()) == {"a", "b"}
        assert conditional.support("a") == 2

    def test_single_path_detection(self):
        path_tree = FPTree.build([["a", "b"], ["a", "b", "c"]], minsup=1)
        path = path_tree.single_path()
        assert path is not None
        assert [node.item for node in path] == ["a", "b", "c"]

        branching = FPTree.build([["a", "b"], ["c"]], minsup=1)
        assert branching.single_path() is None

    def test_iter_nodes_is_preorder_and_complete(self, paper_a_tree):
        visited = [node.item for node in paper_a_tree.iter_nodes()]
        assert len(visited) == paper_a_tree.node_count()
        assert visited[0] in ("b", "c", "d")  # a child of the root

    def test_node_count(self):
        tree = FPTree.build([["a", "b"], ["a", "c"]], minsup=1)
        assert tree.node_count() == 3

    def test_repr(self, paper_a_tree):
        assert "order='canonical'" in repr(paper_a_tree)
