"""Property-based tests: all itemset miners agree with brute force."""

from hypothesis import given, settings, strategies as st

from repro.fptree.counting import count_itemsets_by_node_traversal
from repro.fptree.fpgrowth import fp_growth
from repro.fptree.topdown import top_down_mine
from repro.fptree.tree import FPTree
from tests.helpers import brute_force_frequent_itemsets

ITEMS = ["a", "b", "c", "d", "e", "f"]

databases = st.lists(
    st.sets(st.sampled_from(ITEMS), min_size=0, max_size=5).map(sorted).map(tuple),
    min_size=0,
    max_size=10,
)
minsups = st.integers(min_value=1, max_value=4)


@settings(max_examples=80, deadline=None)
@given(databases, minsups)
def test_fp_growth_matches_brute_force(db, minsup):
    assert fp_growth(db, minsup) == brute_force_frequent_itemsets(db, minsup)


@settings(max_examples=80, deadline=None)
@given(databases, minsups)
def test_fp_growth_orders_agree(db, minsup):
    assert fp_growth(db, minsup, order="canonical") == fp_growth(
        db, minsup, order="frequency"
    )


@settings(max_examples=80, deadline=None)
@given(databases, minsups)
def test_subset_counting_matches_brute_force(db, minsup):
    tree = FPTree.build(db, minsup=minsup, order="canonical")
    assert count_itemsets_by_node_traversal(tree, minsup) == brute_force_frequent_itemsets(
        db, minsup
    )


@settings(max_examples=80, deadline=None)
@given(databases, minsups)
def test_top_down_matches_brute_force(db, minsup):
    tree = FPTree.build(db, minsup=minsup, order="canonical")
    assert top_down_mine(tree, minsup) == brute_force_frequent_itemsets(db, minsup)


@settings(max_examples=60, deadline=None)
@given(databases, minsups)
def test_anti_monotonicity_of_fp_growth_output(db, minsup):
    patterns = fp_growth(db, minsup)
    for pattern, support in patterns.items():
        for item in pattern:
            subset = pattern - {item}
            if subset:
                assert subset in patterns
                assert patterns[subset] >= support
