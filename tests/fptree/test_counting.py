"""Unit tests for repro.fptree.counting (single-tree subset counting, §3.2)."""

import pytest

from repro.exceptions import MiningError
from repro.fptree.counting import count_itemsets_by_node_traversal
from repro.fptree.fpgrowth import fp_growth
from repro.fptree.tree import FPTree
from tests.helpers import brute_force_frequent_itemsets


class TestSubsetCounting:
    def test_invalid_minsup(self):
        tree = FPTree.build([["a"]], minsup=1)
        with pytest.raises(MiningError):
            count_itemsets_by_node_traversal(tree, 0)

    def test_empty_tree(self):
        tree = FPTree.build([], minsup=1)
        assert count_itemsets_by_node_traversal(tree, 1) == {}

    def test_matches_fp_growth_on_projection(self, paper_window_matrix):
        projected = paper_window_matrix.projected_transactions("a")
        tree = FPTree.build(projected, minsup=2, order="canonical")
        counted = count_itemsets_by_node_traversal(tree, 2, suffix={"a"})
        grown = fp_growth(projected, 2, suffix={"a"})
        assert counted == grown

    def test_paper_example3_frequencies(self, paper_window_matrix):
        # Example 3 lists the patterns found from the {a}-projected database.
        projected = paper_window_matrix.projected_transactions("a")
        tree = FPTree.build(projected, minsup=2, order="canonical")
        counted = count_itemsets_by_node_traversal(tree, 2, suffix={"a"})
        assert counted[frozenset({"a", "c"})] == 4
        assert counted[frozenset({"a", "c", "d", "f"})] == 2
        assert counted[frozenset({"a", "d", "f"})] == 3
        assert counted[frozenset({"a", "f"})] == 4
        assert frozenset({"a", "b"}) not in counted  # support 1 < minsup

    def test_without_suffix_matches_brute_force(self):
        db = [["a", "b"], ["a", "b", "c"], ["b", "c"], ["a"]]
        tree = FPTree.build(db, minsup=1, order="canonical")
        counted = count_itemsets_by_node_traversal(tree, 1)
        assert counted == brute_force_frequent_itemsets(db, 1)

    def test_minsup_filter_applied_after_accumulation(self):
        # {a, c} appears once in each of two branches; only the accumulated
        # count of 2 makes it frequent.
        db = [["a", "b", "c"], ["a", "c", "d"]]
        tree = FPTree.build(db, minsup=1, order="canonical")
        counted = count_itemsets_by_node_traversal(tree, 2)
        assert counted[frozenset({"a", "c"})] == 2
        assert frozenset({"a", "b"}) not in counted
