"""Unit tests for repro.datasets.random_graphs."""

import pytest

from repro.datasets.random_graphs import GraphStreamGenerator, RandomGraphModel
from repro.exceptions import DatasetError
from repro.graph.graph import GraphSnapshot


class TestRandomGraphModel:
    def test_parameter_validation(self):
        with pytest.raises(DatasetError):
            RandomGraphModel(num_vertices=1)
        with pytest.raises(DatasetError):
            RandomGraphModel(num_vertices=5, avg_fanout=0)
        with pytest.raises(DatasetError):
            RandomGraphModel(num_vertices=5, topology="hypercube")
        with pytest.raises(DatasetError):
            RandomGraphModel(num_vertices=5, centrality_skew=-1)

    @pytest.mark.parametrize("topology", ["uniform", "scale_free", "ring"])
    def test_edge_count_tracks_fanout(self, topology):
        model = RandomGraphModel(
            num_vertices=20, avg_fanout=4.0, topology=topology, seed=7
        )
        # n * fanout / 2 = 40 edges requested; ring may add a few for the cycle.
        assert 20 <= len(model) <= 60
        assert len(model.weights) == len(model.edges)

    def test_deterministic_with_seed(self):
        a = RandomGraphModel(num_vertices=15, seed=3)
        b = RandomGraphModel(num_vertices=15, seed=3)
        assert a.edges == b.edges
        assert a.weights == b.weights

    def test_different_seeds_differ(self):
        a = RandomGraphModel(num_vertices=15, seed=3)
        b = RandomGraphModel(num_vertices=15, seed=4)
        assert a.edges != b.edges or a.weights != b.weights

    def test_zero_skew_gives_uniform_weights(self):
        model = RandomGraphModel(num_vertices=10, centrality_skew=0, seed=1)
        assert set(model.weights) == {1.0}

    def test_registry_covers_universe(self):
        model = RandomGraphModel(num_vertices=10, seed=2)
        registry = model.registry()
        assert len(registry) == len(model)

    def test_ring_topology_contains_cycle(self):
        model = RandomGraphModel(num_vertices=8, avg_fanout=2.0, topology="ring", seed=5)
        edge_set = set(model.edges)
        from repro.graph.edge import Edge

        for index in range(8):
            assert Edge(f"v{index}", f"v{(index + 1) % 8}") in edge_set

    def test_repr(self):
        assert "topology='uniform'" in repr(RandomGraphModel(num_vertices=5, seed=1))


class TestGraphStreamGenerator:
    def make_generator(self, **kwargs):
        model = RandomGraphModel(num_vertices=12, avg_fanout=4.0, seed=11)
        defaults = dict(avg_edges_per_snapshot=4.0, seed=13)
        defaults.update(kwargs)
        return GraphStreamGenerator(model, **defaults), model

    def test_parameter_validation(self):
        model = RandomGraphModel(num_vertices=5, seed=1)
        with pytest.raises(DatasetError):
            GraphStreamGenerator(model, avg_edges_per_snapshot=0)
        with pytest.raises(DatasetError):
            GraphStreamGenerator(model, drift_interval=-1)

    def test_generates_requested_count(self):
        generator, _ = self.make_generator()
        snapshots = generator.generate(25)
        assert len(snapshots) == 25
        assert all(isinstance(s, GraphSnapshot) for s in snapshots)

    def test_negative_count_rejected(self):
        generator, _ = self.make_generator()
        with pytest.raises(DatasetError):
            generator.generate(-1)

    def test_snapshots_only_use_model_edges(self):
        generator, model = self.make_generator()
        universe = set(model.edges)
        for snapshot in generator.generate(30):
            assert set(snapshot.edges) <= universe
            assert len(snapshot) >= 1

    def test_deterministic_with_seed(self):
        generator_a, _ = self.make_generator()
        generator_b, _ = self.make_generator()
        assert generator_a.generate(10) == generator_b.generate(10)

    def test_average_snapshot_size_near_target(self):
        generator, _ = self.make_generator(avg_edges_per_snapshot=5.0)
        sizes = [len(s) for s in generator.generate(300)]
        assert 3.0 <= sum(sizes) / len(sizes) <= 7.0

    def test_drift_changes_edge_distribution(self):
        generator, _ = self.make_generator(drift_interval=10, seed=21)
        snapshots = generator.generate(200)
        first_half = set()
        second_half = set()
        for snapshot in snapshots[:100]:
            first_half.update(snapshot.edges)
        for snapshot in snapshots[100:]:
            second_half.update(snapshot.edges)
        # Both halves draw from the same universe but need not be identical.
        assert first_half and second_half
