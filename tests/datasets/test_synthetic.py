"""Unit tests for repro.datasets.synthetic.IBMSyntheticGenerator."""

import pytest

from repro.datasets.synthetic import IBMSyntheticGenerator
from repro.exceptions import DatasetError


class TestParameterValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_items": 0},
            {"avg_transaction_length": 0},
            {"avg_pattern_length": -1},
            {"num_patterns": 0},
            {"correlation": 1.5},
            {"correlation": -0.1},
            {"corruption_level": 1.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(DatasetError):
            IBMSyntheticGenerator(**kwargs)

    def test_negative_count(self):
        with pytest.raises(DatasetError):
            IBMSyntheticGenerator(seed=1).generate(-1)


class TestGeneration:
    def make(self, **kwargs):
        defaults = dict(
            num_items=50,
            avg_transaction_length=8.0,
            avg_pattern_length=3.0,
            num_patterns=20,
            seed=5,
        )
        defaults.update(kwargs)
        return IBMSyntheticGenerator(**defaults)

    def test_generates_requested_count(self):
        assert len(self.make().generate(123)) == 123

    def test_items_within_domain(self):
        generator = self.make()
        for transaction in generator.generate(100):
            assert transaction
            for item in transaction:
                assert item.startswith("i")
                assert 0 <= int(item[1:]) < 50

    def test_transactions_are_sorted_and_unique(self):
        for transaction in self.make().generate(50):
            assert list(transaction) == sorted(set(transaction))

    def test_deterministic_with_seed(self):
        assert self.make().generate(40) == self.make().generate(40)

    def test_different_seeds_differ(self):
        assert self.make(seed=5).generate(40) != self.make(seed=6).generate(40)

    def test_average_transaction_length_near_target(self):
        lengths = [len(t) for t in self.make().generate(400)]
        average = sum(lengths) / len(lengths)
        assert 4.0 <= average <= 14.0

    def test_pattern_pool_shapes_transactions(self):
        generator = self.make(corruption_level=0.0, correlation=0.0)
        patterns = generator.patterns
        assert len(patterns) == 20
        # With no corruption, every transaction is a union of pool patterns.
        transactions = generator.generate(30)
        pool_items = set()
        for pattern in patterns:
            pool_items.update(pattern)
        for transaction in transactions:
            assert set(transaction) <= pool_items

    def test_frequent_patterns_emerge(self):
        # The heavy-weighted patterns should be recoverable as frequent itemsets.
        from repro.fptree.fpgrowth import fp_growth

        generator = self.make(corruption_level=0.1)
        transactions = generator.generate(300)
        patterns = fp_growth(transactions, minsup=30)
        assert any(len(p) >= 2 for p in patterns)
