"""Unit tests for repro.datasets.connect4.Connect4LikeGenerator."""

import pytest

from repro.datasets.connect4 import Connect4LikeGenerator
from repro.exceptions import DatasetError


class TestConnect4LikeGenerator:
    def test_parameter_validation(self):
        with pytest.raises(DatasetError):
            Connect4LikeGenerator(plies=-1)
        with pytest.raises(DatasetError):
            Connect4LikeGenerator(plies=43)
        with pytest.raises(DatasetError):
            Connect4LikeGenerator(seed=1).generate(-5)

    def test_domain_and_transaction_shape_match_uci_connect4(self):
        generator = Connect4LikeGenerator(seed=1)
        assert generator.domain_size == 129
        assert generator.transaction_length == 43

    def test_every_record_has_43_items(self):
        generator = Connect4LikeGenerator(seed=2)
        for record in generator.generate(50):
            assert len(record) == 43
            assert list(record) == sorted(record)

    def test_exactly_eight_discs_per_record(self):
        generator = Connect4LikeGenerator(plies=8, seed=3)
        for record in generator.generate(30):
            discs = [item for item in record if item.endswith(("_x", "_o"))]
            blanks = [item for item in record if item.endswith("_b")]
            assert len(discs) == 8
            assert len(blanks) == 34

    def test_players_alternate(self):
        generator = Connect4LikeGenerator(plies=8, seed=4)
        for record in generator.generate(30):
            x_count = sum(1 for item in record if item.endswith("_x"))
            o_count = sum(1 for item in record if item.endswith("_o"))
            assert x_count == 4
            assert o_count == 4

    def test_one_outcome_item_per_record(self):
        generator = Connect4LikeGenerator(seed=5)
        for record in generator.generate(20):
            outcomes = [item for item in record if item.startswith("outcome_")]
            assert len(outcomes) == 1

    def test_dense_items_exist(self):
        # High rows are almost always blank in 8-ply positions, so some items
        # appear in nearly every record — this is the density that matters.
        generator = Connect4LikeGenerator(seed=6)
        records = generator.generate(200)
        from collections import Counter

        counts = Counter(item for record in records for item in record)
        assert counts.most_common(1)[0][1] == 200

    def test_deterministic_with_seed(self):
        assert Connect4LikeGenerator(seed=7).generate(20) == Connect4LikeGenerator(
            seed=7
        ).generate(20)

    def test_zero_plies_board_all_blank(self):
        generator = Connect4LikeGenerator(plies=0, seed=8)
        record = generator.generate(1)[0]
        assert sum(1 for item in record if item.endswith("_b")) == 42
