"""Unit tests for the FIMI reader/writer."""

import pytest

from repro.datasets.fimi import iter_fimi, read_fimi, write_fimi
from repro.exceptions import DatasetError


class TestFimiIO:
    def test_round_trip(self, tmp_path):
        transactions = [("a", "b"), ("c",), ("a", "c", "d")]
        path = write_fimi(tmp_path / "data.fimi", transactions)
        assert read_fimi(path) == list(transactions)

    def test_iter_matches_read(self, tmp_path):
        transactions = [("1", "2", "3"), ("2", "4")]
        path = write_fimi(tmp_path / "data.fimi", transactions)
        assert list(iter_fimi(path)) == read_fimi(path)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "data.fimi"
        path.write_text("# header\n\n1 2 3\n\n4 5\n", encoding="utf-8")
        assert read_fimi(path) == [("1", "2", "3"), ("4", "5")]

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            read_fimi(tmp_path / "absent.fimi")
        with pytest.raises(DatasetError):
            list(iter_fimi(tmp_path / "absent.fimi"))

    def test_items_with_whitespace_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            write_fimi(tmp_path / "bad.fimi", [("a b",)])

    def test_creates_parent_directories(self, tmp_path):
        path = write_fimi(tmp_path / "nested" / "dir" / "data.fimi", [("a",)])
        assert path.exists()

    def test_integer_items_stringified(self, tmp_path):
        path = write_fimi(tmp_path / "ints.fimi", [(1, 2), (3,)])
        assert read_fimi(path) == [("1", "2"), ("3",)]
