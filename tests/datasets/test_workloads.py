"""Canonical workload registry: specs, determinism, and validation."""

import itertools

import pytest

from repro.datasets.synthetic import IBMSyntheticGenerator
from repro.datasets.workloads import (
    WORKLOADS,
    WorkloadSpec,
    get_workload,
    stream_snapshots,
    stream_transactions,
    validate_workload,
    workload_names,
)
from repro.exceptions import DatasetError


class TestRegistry:
    def test_families_and_sizes(self):
        assert set(workload_names()) == {
            "random-graph[smoke]",
            "random-graph[medium]",
            "random-graph[large]",
            "zipf-transactions[smoke]",
            "zipf-transactions[medium]",
            "zipf-transactions[large]",
        }

    def test_names_match_keys(self):
        for name, spec in WORKLOADS.items():
            assert spec.name == name

    def test_large_workloads_are_million_unit(self):
        for family in ("random-graph", "zipf-transactions"):
            spec = get_workload(f"{family}[large]")
            assert spec.num_units == 1_000_000
            assert spec.num_batches == 100

    def test_unknown_workload(self):
        with pytest.raises(DatasetError):
            get_workload("random-graph[galactic]")


def _spec(**overrides):
    fields = dict(
        name="x",
        kind="graph",
        num_units=10,
        batch_size=5,
        window_size=2,
        minsup=0.2,
    )
    fields.update(overrides)
    return WorkloadSpec(**fields)


class TestWorkloadSpec:
    def test_rejects_bad_kind(self):
        with pytest.raises(DatasetError):
            _spec(kind="tabular")

    def test_rejects_nonpositive_units(self):
        with pytest.raises(DatasetError):
            _spec(num_units=0)

    def test_rejects_bad_minsup(self):
        with pytest.raises(DatasetError):
            _spec(minsup=0.0)

    def test_num_batches_rounds_up(self):
        assert _spec(num_units=11, batch_size=5).num_batches == 3


class TestStreams:
    def test_graph_stream_is_lazy(self):
        # Taking a prefix of the million-snapshot stream must not cost a
        # million snapshots.
        spec = get_workload("random-graph[large]")
        first = list(itertools.islice(stream_snapshots(spec), 5))
        assert len(first) == 5
        assert all(snapshot.sorted_edges() for snapshot in first)

    def test_limit_bounds_the_stream(self):
        spec = get_workload("zipf-transactions[smoke]")
        assert len(list(stream_transactions(spec, limit=7))) == 7

    def test_streams_are_reproducible(self):
        spec = get_workload("random-graph[smoke]")
        one = [s.sorted_edges() for s in stream_snapshots(spec, limit=20)]
        two = [s.sorted_edges() for s in stream_snapshots(spec, limit=20)]
        assert one == two

    def test_kind_mismatch_raises(self):
        with pytest.raises(DatasetError):
            list(stream_transactions(get_workload("random-graph[smoke]")))
        with pytest.raises(DatasetError):
            list(stream_snapshots(get_workload("zipf-transactions[smoke]")))


class TestZipfWeighting:
    def test_unknown_weighting_rejected(self):
        with pytest.raises(DatasetError):
            IBMSyntheticGenerator(
                num_items=20, num_patterns=5, pattern_weighting="uniform"
            )

    def test_zipf_skews_toward_head_patterns(self):
        counts = {}
        for weighting in ("exponential", "zipf"):
            generator = IBMSyntheticGenerator(
                num_items=50,
                num_patterns=10,
                pattern_weighting=weighting,
                zipf_exponent=2.0,
                seed=13,
            )
            transactions = list(generator.transactions(400))
            counts[weighting] = sum(len(t) for t in transactions)
        # Both weightings generate the same number of transactions; the
        # distributions differ, which is all the registry relies on.
        assert counts["exponential"] > 0 and counts["zipf"] > 0


class TestValidateWorkload:
    def test_smoke_graph_workload_validates(self):
        spec = get_workload("random-graph[smoke]")
        validation = validate_workload(spec, workers=2)
        assert validation.units == spec.num_units
        assert validation.deterministic is True
        assert validation.parallel_identical is True
        assert validation.patterns > 0

    def test_smoke_transaction_workload_validates(self):
        spec = get_workload("zipf-transactions[smoke]")
        validation = validate_workload(spec, units=200, workers=2)
        assert validation.units == 200
        assert validation.deterministic is True
        assert validation.parallel_identical is True
        assert validation.patterns > 0

    def test_digest_is_stable_across_calls(self):
        spec = get_workload("random-graph[smoke]")
        one = validate_workload(spec, units=50, mine=False)
        two = validate_workload(spec, units=50, mine=False)
        assert one.digest == two.digest
        assert one.parallel_identical is None
        assert one.patterns == -1

    def test_large_validation_defaults_to_a_prefix(self):
        spec = get_workload("random-graph[large]")
        validation = validate_workload(spec, mine=False)
        assert validation.units == 2_000
        assert validation.deterministic is True
