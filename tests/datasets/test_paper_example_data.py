"""Consistency checks for the bundled paper example dataset."""

from repro.datasets.paper_example import (
    PAPER_ALL_FREQUENT,
    PAPER_CONNECTED_FREQUENT,
    PAPER_DISCONNECTED,
    PAPER_EDGE_TABLE,
    PAPER_GRAPHS,
    PAPER_TRANSACTIONS,
    paper_example_batches,
    paper_example_registry,
    paper_example_snapshots,
)
from repro.graph.connectivity import is_connected_edge_set


class TestPaperExampleData:
    def test_nine_graphs(self):
        assert len(PAPER_GRAPHS) == 9
        assert len(paper_example_snapshots()) == 9

    def test_registry_matches_table1(self):
        registry = paper_example_registry()
        assert registry.items() == sorted(PAPER_EDGE_TABLE)
        for item, vertices in PAPER_EDGE_TABLE.items():
            assert registry.vertices_of(item) == vertices

    def test_registry_is_frozen(self):
        assert paper_example_registry().frozen

    def test_snapshot_encoding_matches_expected_transactions(self):
        registry = paper_example_registry()
        snapshots = paper_example_snapshots()
        encoded = [registry.encode(s, register_new=False) for s in snapshots]
        assert encoded == list(PAPER_TRANSACTIONS)

    def test_batches_are_three_by_three(self):
        batches = paper_example_batches()
        assert [len(b) for b in batches] == [3, 3, 3]
        assert [b.batch_id for b in batches] == [0, 1, 2]

    def test_expected_pattern_tables_are_consistent(self):
        assert len(PAPER_ALL_FREQUENT) == 17
        assert len(PAPER_CONNECTED_FREQUENT) == 15
        assert PAPER_DISCONNECTED <= set(PAPER_ALL_FREQUENT)
        assert set(PAPER_CONNECTED_FREQUENT) == set(PAPER_ALL_FREQUENT) - PAPER_DISCONNECTED

    def test_connectivity_labels_are_correct(self):
        registry = paper_example_registry()
        for items in PAPER_ALL_FREQUENT:
            edges = registry.decode(items)
            expected_connected = items not in PAPER_DISCONNECTED
            assert is_connected_edge_set(edges) == expected_connected

    def test_supports_recomputed_from_window(self):
        registry = paper_example_registry()
        window = PAPER_TRANSACTIONS[3:]
        for items, support in PAPER_ALL_FREQUENT.items():
            observed = sum(1 for t in window if items <= set(t))
            assert observed == support, items
