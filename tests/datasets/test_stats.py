"""Tests for workload statistics (repro.datasets.stats)."""

import pytest

from repro.datasets.connect4 import Connect4LikeGenerator
from repro.datasets.paper_example import paper_example_snapshots, PAPER_TRANSACTIONS
from repro.datasets.stats import (
    SnapshotStats,
    TransactionStats,
    item_support_distribution,
    snapshot_stats,
    transaction_stats,
)
from repro.exceptions import DatasetError


class TestTransactionStats:
    def test_empty(self):
        stats = transaction_stats([])
        assert stats.transaction_count == 0
        assert stats.density == 0.0

    def test_paper_window(self):
        stats = transaction_stats(PAPER_TRANSACTIONS[3:])
        assert stats.transaction_count == 6
        assert stats.distinct_items == 6
        assert stats.min_length == 3
        assert stats.max_length == 4
        assert stats.avg_length == pytest.approx(21 / 6)
        assert 0 < stats.density < 1

    def test_density_of_fully_dense_data(self):
        stats = transaction_stats([("a", "b"), ("a", "b")])
        assert stats.density == 1.0

    def test_connect4_like_density_is_high(self):
        transactions = Connect4LikeGenerator(seed=1).generate(50)
        stats = transaction_stats(transactions)
        assert stats.avg_length == 43
        assert stats.density > 0.3

    def test_as_dict_keys(self):
        stats = transaction_stats([("a",)])
        assert set(stats.as_dict()) == {
            "transactions",
            "distinct_items",
            "avg_length",
            "min_length",
            "max_length",
            "density",
        }


class TestSupportDistribution:
    def test_invalid_buckets(self):
        with pytest.raises(DatasetError):
            item_support_distribution([("a",)], buckets=0)

    def test_empty(self):
        assert item_support_distribution([], buckets=4) == [0, 0, 0, 0]

    def test_buckets_partition_items(self):
        transactions = [("a", "b"), ("a",), ("a", "c"), ("a", "b")]
        histogram = item_support_distribution(transactions, buckets=4)
        # a: 100% -> last bucket; b: 50% -> third bucket; c: 25% -> second bucket.
        assert sum(histogram) == 3
        assert histogram[3] == 1
        assert histogram[2] == 1
        assert histogram[1] == 1

    def test_full_support_lands_in_last_bucket(self):
        histogram = item_support_distribution([("x",), ("x",)], buckets=5)
        assert histogram[-1] == 1


class TestSnapshotStats:
    def test_empty(self):
        stats = snapshot_stats([])
        assert stats == SnapshotStats(0, 0, 0, 0.0, 0, 0.0)

    def test_paper_snapshots(self):
        stats = snapshot_stats(paper_example_snapshots())
        assert stats.snapshot_count == 9
        assert stats.distinct_vertices == 4
        assert stats.distinct_edges == 6
        # Union graph is the complete graph on 4 vertices: every degree is 3.
        assert stats.max_degree == 3
        assert stats.avg_degree == pytest.approx(3.0)
        assert stats.avg_edges_per_snapshot == pytest.approx(30 / 9)

    def test_as_dict_round_numbers(self):
        stats = snapshot_stats(paper_example_snapshots())
        flattened = stats.as_dict()
        assert flattened["snapshots"] == 9
        assert flattened["avg_degree"] == 3.0
