"""Reference implementations and small utilities used by the tests.

The brute-force miners here are deliberately simple (enumerate all candidate
itemsets) so they can serve as ground truth for the real algorithms in unit
and property-based tests.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.graph.connectivity import is_connected_edge_set
from repro.graph.edge_registry import EdgeRegistry

Items = FrozenSet[str]
Transaction = Tuple[str, ...]


def brute_force_frequent_itemsets(
    transactions: Sequence[Sequence[str]], minsup: int
) -> Dict[Items, int]:
    """All frequent itemsets by explicit subset enumeration (ground truth)."""
    transaction_sets = [frozenset(t) for t in transactions]
    universe = sorted(set().union(*transaction_sets)) if transaction_sets else []
    result: Dict[Items, int] = {}
    for size in range(1, len(universe) + 1):
        found_any = False
        for candidate in combinations(universe, size):
            candidate_set = frozenset(candidate)
            support = sum(1 for t in transaction_sets if candidate_set <= t)
            if support >= minsup:
                result[candidate_set] = support
                found_any = True
        if not found_any:
            break
    return result


def brute_force_connected_frequent(
    transactions: Sequence[Sequence[str]],
    minsup: int,
    registry: EdgeRegistry,
) -> Dict[Items, int]:
    """Frequent itemsets whose decoded edges form a connected subgraph."""
    return {
        items: support
        for items, support in brute_force_frequent_itemsets(transactions, minsup).items()
        if is_connected_edge_set(registry.decode(items))
    }


def transactions_from_batches(batches: Iterable) -> List[Transaction]:
    """Flatten a list of batches into a transaction list."""
    flat: List[Transaction] = []
    for batch in batches:
        flat.extend(batch.transactions)
    return flat
