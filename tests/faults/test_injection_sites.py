"""Every injection site is wired to the unified failure policy.

Each test arms a fault plan against one site and asserts the subsystem
recovers the way DESIGN.md §14 promises: I/O sites retry under the
policy and leave byte-identical artifacts, the checkpoint seal skips
(never kills the run) once its budget is spent, shared-memory faults
surface as ``SharedMemoryError`` for the transport ladder, and the HTTP
server drops the one poisoned connection while counting it in
``/stats``.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import faults
from repro.checkpoint import CheckpointManager, Checkpointer
from repro.core.miner import StreamSubgraphMiner
from repro.datasets.synthetic import IBMSyntheticGenerator
from repro.exceptions import SharedMemoryError
from repro.history.journal import DiskJournal, MemoryJournal, SlideRecord
from repro.ingest import ingest_transactions
from repro.resilience import EventLog, FailurePolicy
from repro.service.api import HistoryService
from repro.service.server import build_server
from repro.storage.backend import MemoryWindowStore
from repro.storage.shm import (
    publish_block,
    read_shared_block,
    shared_memory_available,
    unlink_block,
)
from repro.stream.stream import TransactionStream

#: Zero sleeps: these tests exercise the retry *logic*, not the pacing.
FAST = FailurePolicy(
    max_retries=2, backoff_s=0.0, io_retries=2, io_backoff_s=0.0, jitter=0.0
)

shm_required = pytest.mark.skipif(
    not shared_memory_available(), reason="shared memory unavailable on this host"
)


@pytest.fixture(autouse=True)
def disarm():
    yield
    faults.uninstall_plan()


def make_record(slide_id):
    return SlideRecord(
        slide_id=slide_id,
        first_batch=max(0, slide_id - 2),
        last_batch=slide_id,
        num_columns=30,
        minsup=3,
        patterns=((("a",), 7), (("a", "b"), 4)),
        timings={},
    )


class TestJournalWrite:
    def test_append_retries_and_bytes_match_a_clean_run(self, tmp_path):
        clean = DiskJournal(tmp_path / "clean")
        for slide in range(3):
            clean.append(make_record(slide))
        clean.close()

        events = EventLog()
        faulted = DiskJournal(tmp_path / "faulted")
        faulted.failure_policy = FAST
        faulted.resilience_events = events
        faults.install_plan("journal.write@2x2")
        for slide in range(3):
            faulted.append(make_record(slide))
        faulted.close()

        assert events.counts() == {"retry": 2}
        assert (tmp_path / "faulted" / "journal.dat").read_bytes() == (
            tmp_path / "clean" / "journal.dat"
        ).read_bytes()
        reopened = DiskJournal(tmp_path / "faulted")
        assert [record.slide_id for record in reopened.records()] == [0, 1, 2]
        reopened.close()

    def test_exhausted_budget_propagates(self, tmp_path):
        journal = DiskJournal(tmp_path / "journal")
        journal.failure_policy = FAST
        journal.resilience_events = EventLog()
        faults.install_plan("journal.write@1x5")  # outlives io_retries=2
        with pytest.raises(OSError):
            journal.append(make_record(0))
        journal.close()

    def test_clean_append_records_no_events(self, tmp_path):
        events = EventLog()
        journal = DiskJournal(tmp_path / "journal")
        journal.failure_policy = FAST
        journal.resilience_events = events
        journal.append(make_record(0))
        journal.close()
        assert len(events) == 0


class TestSegmentWrite:
    TRANSACTIONS = [("a",), ("b",), ("a", "b"), ("c",), ("a", "c")] * 6

    def _ingest(self, events=None):
        store = MemoryWindowStore(3)
        report = ingest_transactions(
            store,
            self.TRANSACTIONS,
            batch_size=5,
            policy=FAST,
            events=events,
        )
        return store, report

    def test_commit_retries_and_window_matches_a_clean_run(self):
        clean_store, clean_report = self._ingest()
        faults.install_plan("segment.write@2")
        faulted_store, report = self._ingest(events=EventLog())
        assert report.retries == 1
        assert report.batches == clean_report.batches
        assert dict(faulted_store.item_frequencies()) == dict(
            clean_store.item_frequencies()
        )
        assert faulted_store.boundaries() == clean_store.boundaries()


class TestCheckpointWrite:
    def _checkpointer(self, tmp_path, events):
        miner = StreamSubgraphMiner(window_size=3, batch_size=10, algorithm="vertical")
        miner.add_transactions(IBMSyntheticGenerator(seed=11).generate(50))
        manager = CheckpointManager(tmp_path / "chk")
        return Checkpointer(manager, miner, every=1, policy=FAST, events=events)

    def test_seal_retries_then_succeeds(self, tmp_path):
        events = EventLog()
        checkpointer = self._checkpointer(tmp_path, events)
        faults.install_plan("checkpoint.write@1")
        checkpointer(make_record(4))
        assert checkpointer.snapshots_sealed == 1
        assert checkpointer.snapshots_skipped == 0
        assert events.counts() == {"retry": 1}

    def test_exhausted_budget_skips_the_seal_not_the_run(self, tmp_path):
        events = EventLog()
        checkpointer = self._checkpointer(tmp_path, events)
        faults.install_plan("checkpoint.write@1x10")  # every attempt fails
        checkpointer(make_record(4))  # must not raise
        assert checkpointer.snapshots_sealed == 0
        assert checkpointer.snapshots_skipped == 1
        assert events.counts() == {"retry": 2, "skip": 1}
        # The next cadence tries again once the fault window has passed.
        faults.uninstall_plan()
        checkpointer(make_record(5))
        assert checkpointer.snapshots_sealed == 1


@shm_required
class TestSharedMemory:
    def test_publish_fault_surfaces_as_shared_memory_error(self):
        faults.install_plan("shm.publish@1")
        with pytest.raises(SharedMemoryError):
            publish_block([b"payload"])
        name, spans = publish_block([b"payload"])  # hit 2: clean
        try:
            assert read_shared_block(name, *spans[0]) == b"payload"
        finally:
            unlink_block(name)

    def test_attach_fault_surfaces_then_clears(self):
        name, spans = publish_block([b"payload"])
        try:
            faults.install_plan("shm.attach@1")
            with pytest.raises(SharedMemoryError):
                read_shared_block(name, *spans[0])
            assert read_shared_block(name, *spans[0]) == b"payload"
        finally:
            unlink_block(name)


class TestHTTPResponse:
    @pytest.fixture()
    def running_server(self):
        journal = MemoryJournal()
        miner = StreamSubgraphMiner(
            window_size=3, batch_size=5, algorithm="vertical", on_slide=journal.append
        )
        miner.watch(
            TransactionStream([("a",), ("b",), ("a", "b")] * 10, batch_size=5),
            minsup=2,
            connected_only=False,
        )
        server = build_server(HistoryService(journal), host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_poisoned_response_drops_one_connection_and_is_counted(
        self, running_server
    ):
        port = running_server.server_address[1]
        url = f"http://127.0.0.1:{port}/stats"
        faults.install_plan("http.response@1")
        with pytest.raises((urllib.error.URLError, ConnectionError)):
            urllib.request.urlopen(url, timeout=5)
        # The server survives: the next request on a fresh connection works
        # and reports the drop.
        with urllib.request.urlopen(url, timeout=5) as response:
            payload = json.loads(response.read())
        assert payload["resilience"] == {"dropped_connections": 1}
