"""Chaos parity: seeded fault schedules never change the mined history.

The acceptance bar of DESIGN.md §14: under a deterministic fault plan —
worker kills, shared-memory attach failures, journal write errors — a
watch run recovers via the failure policy and seals a ``journal.dat``
**byte-identical** to the fault-free sequential run, for every
(workers × ingest_workers × transport) combination.  A fault-free run
must additionally record *zero* resilience events: the recovery paths
cost nothing until something actually breaks.
"""

import pytest

from repro import faults
from repro.core.miner import StreamSubgraphMiner
from repro.datasets.synthetic import IBMSyntheticGenerator
from repro.history.journal import DiskJournal
from repro.parallel.pool import process_pools_available
from repro.resilience import FailurePolicy
from repro.storage.shm import shared_memory_available
from repro.stream.stream import TransactionStream

BATCH_SIZE = 10
WINDOW_SIZE = 2
MINSUP = 0.3
TRANSACTIONS = IBMSyntheticGenerator(seed=23).generate(40)

#: Millisecond backoffs keep the chaos matrix fast; determinism of the
#: recovery (not its pacing) is what parity pins down.
FAST = FailurePolicy(
    backoff_s=0.001, max_backoff_s=0.002, io_backoff_s=0.001, jitter=0.0
)

#: One plan per fault family: process death in both pools, a transport
#: attach failure, and a persistent-layer write error.
FAULT_PLANS = (
    "mine.shard@1:crash;ingest.encode@2:crash",
    "shm.attach@1",
    "journal.write@2x2",
)

COMBOS = ((0, 0), (2, 0), (0, 2), (2, 2))

pool_required = pytest.mark.skipif(
    not process_pools_available(), reason="process pools unavailable on this host"
)


def transports():
    modes = ["pickle"]
    if shared_memory_available():
        modes.append("shm")
    return modes


@pytest.fixture(autouse=True)
def disarm():
    yield
    faults.uninstall_plan()


def run_watch(path, workers=0, ingest_workers=0, transport="pickle", policy=None):
    journal = DiskJournal(path)
    journal.failure_policy = policy
    miner = StreamSubgraphMiner(
        window_size=WINDOW_SIZE,
        batch_size=BATCH_SIZE,
        algorithm="vertical",
        on_slide=journal.append,
        transport=transport,
        failure_policy=policy,
    )
    journal.resilience_events = miner.resilience_event_log
    try:
        with miner:
            miner.watch(
                TransactionStream(TRANSACTIONS, batch_size=BATCH_SIZE),
                minsup=MINSUP,
                connected_only=False,
                workers=workers,
                ingest_workers=ingest_workers,
            )
    finally:
        journal.close()
    return miner.resilience_events


@pytest.fixture(scope="module")
def reference_bytes(tmp_path_factory):
    """journal.dat of the plain sequential, fault-free run."""
    path = tmp_path_factory.mktemp("reference") / "journal"
    run_watch(path)
    return (path / "journal.dat").read_bytes()


@pool_required
class TestChaosParity:
    @pytest.mark.parametrize("plan", FAULT_PLANS)
    @pytest.mark.parametrize("workers,ingest_workers", COMBOS)
    @pytest.mark.parametrize("transport", transports())
    def test_journal_bytes_survive_faults(
        self, tmp_path, reference_bytes, plan, workers, ingest_workers, transport
    ):
        faults.install_plan(plan)
        try:
            events = run_watch(
                tmp_path / "journal",
                workers=workers,
                ingest_workers=ingest_workers,
                transport=transport,
                policy=FAST,
            )
        finally:
            faults.uninstall_plan()
        assert (tmp_path / "journal" / "journal.dat").read_bytes() == reference_bytes
        # journal.write trips in the coordinating process on every combo;
        # the other sites only fire when their layer is actually in play
        # (shm.attach needs the shm transport, crashes need their pool).
        if plan.startswith("journal.write"):
            assert any(event.kind == "retry" for event in events)

    @pytest.mark.parametrize("workers,ingest_workers", COMBOS)
    @pytest.mark.parametrize("transport", transports())
    def test_fault_free_runs_record_zero_events(
        self, tmp_path, reference_bytes, workers, ingest_workers, transport
    ):
        events = run_watch(
            tmp_path / "journal",
            workers=workers,
            ingest_workers=ingest_workers,
            transport=transport,
            policy=FAST,
        )
        assert (tmp_path / "journal" / "journal.dat").read_bytes() == reference_bytes
        assert events == ()
