"""Unit tests of the unified failure policy and resilience event log.

The policy's backoff is exponential, capped, and *deterministically*
jittered; the event log is append-only and summarisable; the two retry
helpers honour the policy's budgets and record one event per decision.
"""

import pytest

from repro.exceptions import InjectedWorkerCrash, ResilienceError
from repro.resilience import (
    DEFAULT_POLICY,
    DEGRADATION_LADDER,
    EventLog,
    FailurePolicy,
    call_with_crash_retry,
    retry_io,
)


class TestFailurePolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_s": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_s": 2.0, "max_backoff_s": 1.0},
            {"jitter": 1.0},
            {"jitter": -0.1},
            {"task_timeout_s": 0.0},
            {"io_retries": -1},
            {"io_backoff_s": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ResilienceError):
            FailurePolicy(**kwargs)

    def test_delays_are_deterministic_for_a_seed(self):
        policy = FailurePolicy(seed=42)
        again = FailurePolicy(seed=42)
        assert [policy.delay_s(i) for i in range(5)] == [
            again.delay_s(i) for i in range(5)
        ]

    def test_delays_grow_and_cap(self):
        policy = FailurePolicy(
            backoff_s=0.1, backoff_factor=2.0, max_backoff_s=0.3, jitter=0.0
        )
        assert [policy.delay_s(i) for i in range(4)] == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_stays_within_the_band(self):
        policy = FailurePolicy(backoff_s=1.0, max_backoff_s=1.0, jitter=0.25)
        for attempt in range(20):
            assert 0.75 <= policy.delay_s(attempt) <= 1.25

    def test_io_delay_uses_the_io_base(self):
        policy = FailurePolicy(
            backoff_s=1.0, io_backoff_s=0.01, backoff_factor=2.0,
            max_backoff_s=4.0, jitter=0.0,
        )
        assert policy.io_delay_s(0) == 0.01
        assert policy.io_delay_s(1) == 0.02

    def test_degradation_ladder_is_ordered(self):
        assert DEGRADATION_LADDER == ("shm", "pickle", "in-process")

    def test_default_policy_is_usable(self):
        assert DEFAULT_POLICY.max_retries == 2
        assert DEFAULT_POLICY.task_timeout_s is None


class TestEventLog:
    def test_record_and_read_back(self):
        log = EventLog()
        log.record("retry", "journal.write", attempt=1, detail="EIO")
        log.record("degrade", "pool")
        assert [event.kind for event in log.events] == ["retry", "degrade"]
        assert len(log) == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ResilienceError):
            EventLog().record("explode", "pool")

    def test_since_slices_later_events(self):
        log = EventLog()
        log.record("retry", "a")
        start = len(log)
        log.record("respawn", "b")
        assert [event.site for event in log.since(start)] == ["b"]

    def test_counts_and_summary(self):
        log = EventLog()
        assert log.summary() == ""
        log.record("retry", "a")
        log.record("retry", "b")
        log.record("skip", "c")
        assert log.counts() == {"retry": 2, "skip": 1}
        assert log.summary() == "retry=2 skip=1"

    def test_on_event_streams_live(self):
        seen = []
        log = EventLog(on_event=seen.append)
        log.record("drop", "http.response")
        assert seen[0].kind == "drop"
        assert seen[0].as_dict()["event"] == "resilience"

    def test_on_event_attachable_after_construction(self):
        log = EventLog()
        seen = []
        log.on_event = seen.append
        log.record("timeout", "task")
        assert len(seen) == 1


class TestRetryIO:
    def _flaky(self, failures, exception=OSError):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= failures:
                raise exception(f"boom {calls['n']}")
            return calls["n"]

        return fn, calls

    def test_succeeds_after_retries_and_records_each(self):
        fn, calls = self._flaky(2)
        events = EventLog()
        policy = FailurePolicy(io_retries=2, io_backoff_s=0.0, jitter=0.0)
        assert retry_io(fn, site="segment.write", policy=policy, events=events) == 3
        assert calls["n"] == 3
        assert [event.attempt for event in events.events] == [1, 2]
        assert all(event.site == "segment.write" for event in events.events)

    def test_budget_exhausted_propagates_the_last_error(self):
        fn, _ = self._flaky(5)
        policy = FailurePolicy(io_retries=2, io_backoff_s=0.0, jitter=0.0)
        with pytest.raises(OSError, match="boom 3"):
            retry_io(fn, site="journal.write", policy=policy, events=EventLog())

    def test_reset_hook_runs_before_every_retry(self):
        fn, _ = self._flaky(2)
        resets = []
        policy = FailurePolicy(io_retries=2, io_backoff_s=0.0, jitter=0.0)
        retry_io(
            fn, site="journal.write", policy=policy, events=EventLog(),
            reset=lambda: resets.append(True),
        )
        assert len(resets) == 2

    def test_unlisted_exceptions_pass_through_immediately(self):
        fn, calls = self._flaky(1, exception=ValueError)
        with pytest.raises(ValueError):
            retry_io(fn, site="journal.write", events=EventLog())
        assert calls["n"] == 1

    def test_backoff_uses_injected_sleep(self):
        fn, _ = self._flaky(1)
        slept = []
        policy = FailurePolicy(io_retries=1, io_backoff_s=0.5, jitter=0.0)
        retry_io(
            fn, site="shm.attach", policy=policy, events=EventLog(),
            sleep=slept.append,
        )
        assert slept == [0.5]


class TestCallWithCrashRetry:
    def test_injected_crash_retried_then_succeeds(self):
        calls = {"n": 0}

        def fn(task):
            calls["n"] += 1
            if calls["n"] == 1:
                raise InjectedWorkerCrash("injected")
            return task * 2

        events = EventLog()
        policy = FailurePolicy(max_retries=2, backoff_s=0.0, jitter=0.0)
        assert call_with_crash_retry(fn, 21, policy, events) == 42
        assert events.counts() == {"retry": 1}

    def test_budget_exhausted_propagates_the_crash(self):
        def fn(task):
            raise InjectedWorkerCrash("always")

        policy = FailurePolicy(max_retries=1, backoff_s=0.0, jitter=0.0)
        with pytest.raises(InjectedWorkerCrash):
            call_with_crash_retry(fn, 0, policy, EventLog())

    def test_genuine_exceptions_are_not_retried(self):
        calls = {"n": 0}

        def fn(task):
            calls["n"] += 1
            raise ValueError("real bug")

        with pytest.raises(ValueError):
            call_with_crash_retry(fn, 0, DEFAULT_POLICY, EventLog())
        assert calls["n"] == 1
