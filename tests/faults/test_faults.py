"""Unit tests of the deterministic fault-injection grammar and runtime.

Specs parse and round-trip, plans arm process-wide and export through the
environment, hit counters are per process and per site, and each action
(raise / crash / sleep) does exactly what the grammar promises.
"""

import os
import time

import pytest

from repro import faults
from repro.exceptions import FaultSpecError, InjectedWorkerCrash, SharedMemoryError


@pytest.fixture(autouse=True)
def disarm():
    """No test leaves a plan armed (or an env export behind)."""
    yield
    faults.uninstall_plan()


class TestSpecGrammar:
    def test_minimal_spec(self):
        plan = faults.parse_fault_plan("journal.write@2")
        (spec,) = plan.specs
        assert spec.site == "journal.write"
        assert spec.at == 2
        assert spec.times == 1
        assert spec.action == "raise"

    def test_full_spec(self):
        plan = faults.parse_fault_plan("ingest.encode@3x2:sleep~0.25")
        (spec,) = plan.specs
        assert (spec.at, spec.times, spec.action, spec.delay_s) == (3, 2, "sleep", 0.25)

    def test_multiple_specs_and_whitespace(self):
        plan = faults.parse_fault_plan(" mine.shard@1:crash ; shm.attach@2 ;")
        assert [spec.site for spec in plan.specs] == ["mine.shard", "shm.attach"]

    def test_round_trip(self):
        for text in (
            "journal.write@2",
            "shm.attach@1x3",
            "mine.shard@2:crash",
            "ingest.encode@1:sleep~0.2",
            "journal.write@2x2;checkpoint.write@1",
        ):
            assert faults.parse_fault_plan(text).to_text() == text

    @pytest.mark.parametrize(
        "bad",
        [
            "journal.write",  # no hit number
            "journal.write@0",  # hits are 1-based
            "journal.write@2x0",  # times must be >= 1
            "journal.write@2:explode",  # unknown action
            "no.such.site@1",  # unknown site
            "journal.write@2;journal.write@3",  # duplicate site
            "JOURNAL.WRITE@2",  # sites are lowercase
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            faults.parse_fault_plan(bad)

    def test_covers_window(self):
        spec = faults.parse_fault_plan("shm.attach@2x3").specs[0]
        assert [spec.covers(hit) for hit in range(1, 7)] == [
            False, True, True, True, False, False,
        ]


class TestPlanLifecycle:
    def test_install_exports_to_environment(self):
        faults.install_plan("journal.write@2")
        assert os.environ[faults.ENV_VAR] == "journal.write@2"
        faults.uninstall_plan()
        assert faults.ENV_VAR not in os.environ

    def test_active_plan_inherits_from_environment(self):
        os.environ[faults.ENV_VAR] = "shm.attach@1"
        try:
            plan = faults.active_plan()
            assert plan is not None and plan.for_site("shm.attach") is not None
        finally:
            os.environ.pop(faults.ENV_VAR, None)

    def test_malformed_environment_is_ignored_not_fatal(self):
        # A worker inheriting garbage must not die on its first trip().
        os.environ[faults.ENV_VAR] = "not a plan @@"
        try:
            faults.trip("journal.write", OSError)  # must not raise
        finally:
            os.environ.pop(faults.ENV_VAR, None)

    def test_install_resets_counters(self):
        faults.install_plan("journal.write@5")
        faults.trip("journal.write", OSError)
        assert faults.hits("journal.write") == 1
        faults.install_plan("journal.write@5")
        assert faults.hits("journal.write") == 0

    def test_no_plan_is_a_noop(self):
        faults.uninstall_plan()
        faults.trip("journal.write", OSError)
        # Counters do not even advance when nothing is armed.
        assert faults.hits("journal.write") == 0


class TestTrip:
    def test_raise_fires_at_exact_hits_with_site_exception(self):
        faults.install_plan("shm.attach@2x2")
        faults.trip("shm.attach", SharedMemoryError)  # hit 1: clean
        with pytest.raises(SharedMemoryError, match="hit 2"):
            faults.trip("shm.attach", SharedMemoryError)
        with pytest.raises(SharedMemoryError, match="hit 3"):
            faults.trip("shm.attach", SharedMemoryError)
        faults.trip("shm.attach", SharedMemoryError)  # hit 4: clean again

    def test_counters_are_per_site(self):
        faults.install_plan("journal.write@2;segment.write@5")
        faults.trip("segment.write", OSError)  # hit 1 on its own counter
        faults.trip("journal.write", OSError)  # hit 1: clean
        with pytest.raises(OSError):
            faults.trip("journal.write", OSError)  # hit 2 despite segment hit
        assert faults.hits("segment.write") == 1
        assert faults.hits("journal.write") == 2

    def test_crash_in_coordinator_raises_injected_worker_crash(self):
        # In the coordinating process a crash must NOT os._exit — it
        # surfaces as a retryable exception instead.
        faults.install_plan("mine.shard@1:crash")
        with pytest.raises(InjectedWorkerCrash):
            faults.trip("mine.shard")

    def test_sleep_delays_then_continues(self):
        faults.install_plan("ingest.encode@1:sleep~0.05")
        started = time.perf_counter()
        faults.trip("ingest.encode")  # must not raise
        assert time.perf_counter() - started >= 0.04

    def test_reset_counters_rearms_the_window(self):
        faults.install_plan("journal.write@1")
        with pytest.raises(OSError):
            faults.trip("journal.write", OSError)
        faults.trip("journal.write", OSError)  # hit 2: clean
        faults.reset_counters()
        with pytest.raises(OSError):  # hit 1 again after reset
            faults.trip("journal.write", OSError)
