"""Unit tests for the pattern journal: records, serialisation, backends."""

import json

import pytest

from repro.exceptions import HistoryError
from repro.history.journal import (
    DATA_NAME,
    JOURNAL_FORMAT,
    LOG_NAME,
    MANIFEST_NAME,
    RECORD_MAGIC,
    DiskJournal,
    MemoryJournal,
    SlideRecord,
    open_journal,
)


def make_record(slide_id=0, patterns=None, timings=None, **overrides):
    fields = {
        "slide_id": slide_id,
        "first_batch": max(0, slide_id - 2),
        "last_batch": slide_id,
        "num_columns": 30,
        "minsup": 3,
        "patterns": patterns if patterns is not None else ((("a",), 7), (("a", "b"), 4)),
        "timings": timings or {},
    }
    fields.update(overrides)
    return SlideRecord(**fields)


class TestSlideRecord:
    def test_patterns_are_normalised_to_canonical_order(self):
        record = make_record(
            patterns=((("c", "a"), 2), (("b",), 5), (("a",), 6))
        )
        assert record.patterns == ((("a",), 6), (("b",), 5), (("a", "c"), 2))

    def test_patterns_accept_a_mapping(self):
        record = make_record(patterns={("b", "a"): 4, ("a",): 9})
        assert record.patterns == ((("a",), 9), (("a", "b"), 4))
        assert record.support_of(("a", "b")) == 4
        assert record.support_of(("z",)) is None

    def test_duplicate_patterns_rejected(self):
        with pytest.raises(HistoryError):
            make_record(patterns=((("a", "b"), 2), (("b", "a"), 3)))

    def test_invalid_fields_rejected(self):
        with pytest.raises(HistoryError):
            make_record(slide_id=-1)
        with pytest.raises(HistoryError):
            make_record(first_batch=5, last_batch=3)
        with pytest.raises(HistoryError):
            make_record(minsup=0)
        with pytest.raises(HistoryError):
            make_record(patterns=(((), 2),))

    def test_timings_do_not_affect_equality(self):
        assert make_record(timings={"mine_s": 0.5}) == make_record(
            timings={"mine_s": 99.0}
        )


class TestRecordSerialisation:
    def test_round_trip(self):
        record = make_record(
            slide_id=7,
            patterns=((("a",), 12), (("b", "c"), 5), (("a", "b", "c"), 3)),
        )
        clone = SlideRecord.from_bytes(record.to_bytes())
        assert clone == record
        assert clone.patterns == record.patterns
        assert clone.slide_id == 7

    def test_bytes_exclude_timings(self):
        with_timings = make_record(timings={"mine_s": 1.23})
        without = make_record()
        assert with_timings.to_bytes() == without.to_bytes()

    def test_round_trip_empty_pattern_set(self):
        record = make_record(patterns=())
        clone = SlideRecord.from_bytes(record.to_bytes())
        assert clone.patterns == ()
        assert clone.pattern_count == 0

    def test_round_trip_wide_symbol_table(self):
        # More than 8 items forces a multi-byte bitmask stride.
        items = [f"edge{index:02d}" for index in range(20)]
        patterns = tuple((tuple(items[i : i + 3]), 50 - i) for i in range(0, 18, 3))
        record = make_record(patterns=patterns)
        clone = SlideRecord.from_bytes(record.to_bytes())
        assert clone == record

    def test_bytes_are_deterministic(self):
        one = make_record(patterns=((("b",), 2), (("a",), 3)))
        two = make_record(patterns=((("a",), 3), (("b",), 2)))
        assert one.to_bytes() == two.to_bytes()
        assert one.to_bytes().startswith(RECORD_MAGIC)

    def test_corrupt_bytes_rejected(self):
        with pytest.raises(HistoryError):
            SlideRecord.from_bytes(b"NOPE" + b"\x00" * 16)
        truncated = make_record().to_bytes()[:-3]
        with pytest.raises(HistoryError):
            SlideRecord.from_bytes(truncated)

    def test_timings_reattached_on_request(self):
        record = make_record()
        clone = SlideRecord.from_bytes(record.to_bytes(), timings={"mine_s": 0.25})
        assert clone.timings == {"mine_s": 0.25}
        assert clone == record


class TestMemoryJournal:
    def test_append_and_read(self):
        journal = MemoryJournal()
        journal.append(make_record(0))
        journal.append(make_record(1))
        assert len(journal) == 2
        assert journal.slide_ids() == [0, 1]
        assert journal.last_slide_id == 1
        assert journal.record(0).slide_id == 0
        assert journal.path is None
        assert journal.disk_size_bytes() == 0

    def test_append_only_ordering_enforced(self):
        journal = MemoryJournal()
        journal.append(make_record(3))
        with pytest.raises(HistoryError):
            journal.append(make_record(3))
        with pytest.raises(HistoryError):
            journal.append(make_record(1))

    def test_non_record_rejected(self):
        with pytest.raises(HistoryError):
            MemoryJournal().append({"slide_id": 0})

    def test_unknown_slide_lookup_raises(self):
        with pytest.raises(HistoryError):
            MemoryJournal().record(5)


class TestDiskJournal:
    def test_persist_and_reopen(self, tmp_path):
        journal = DiskJournal(tmp_path / "journal")
        records = [
            make_record(0, timings={"mine_s": 0.1}),
            make_record(1, patterns=((("x", "y"), 2),), timings={"mine_s": 0.2}),
        ]
        for record in records:
            journal.append(record)
        journal.close()
        # The data file is the records' deterministic bytes, concatenated.
        assert (tmp_path / "journal" / DATA_NAME).read_bytes() == b"".join(
            record.to_bytes() for record in records
        )
        reopened = open_journal(tmp_path / "journal")
        assert list(reopened.records()) == records
        # Timings travel via the log, not the record bytes.
        assert reopened.record(0).timings == {"mine_s": 0.1}
        assert reopened.timings()[1] == {"mine_s": 0.2}
        assert reopened.disk_size_bytes() > 0

    def test_appends_resume_an_existing_journal(self, tmp_path):
        path = tmp_path / "journal"
        DiskJournal(path).append(make_record(0))
        resumed = DiskJournal(path)
        resumed.append(make_record(1))
        assert open_journal(path).slide_ids() == [0, 1]
        with pytest.raises(HistoryError):
            resumed.append(make_record(0))

    def test_manifest_and_log_contents(self, tmp_path):
        journal = DiskJournal(tmp_path / "journal")
        journal.append(make_record(4, timings={"mine_s": 0.5}))
        manifest = json.loads(
            (tmp_path / "journal" / MANIFEST_NAME).read_text(encoding="utf-8")
        )
        assert manifest["format"] == JOURNAL_FORMAT
        lines = (
            (tmp_path / "journal" / LOG_NAME)
            .read_text(encoding="utf-8")
            .strip()
            .splitlines()
        )
        (entry,) = [json.loads(line) for line in lines]
        assert entry["slide_id"] == 4
        assert entry["offset"] == 0
        assert entry["length"] == (
            tmp_path / "journal" / DATA_NAME
        ).stat().st_size
        assert entry["pattern_count"] == 2
        assert entry["timings"] == {"mine_s": 0.5}

    def test_appends_never_rewrite_log_or_data(self, tmp_path):
        """The append-only contract on disk: data and log only ever grow."""
        journal = DiskJournal(tmp_path / "journal")
        journal.append(make_record(0))
        log = tmp_path / "journal" / LOG_NAME
        data = tmp_path / "journal" / DATA_NAME
        first_log = log.read_text(encoding="utf-8")
        first_data = data.read_bytes()
        journal.append(make_record(1))
        assert log.read_text(encoding="utf-8").startswith(first_log)
        assert data.read_bytes().startswith(first_data)
        assert len(log.read_text(encoding="utf-8").strip().splitlines()) == 2

    def test_corrupt_log_line_raises(self, tmp_path):
        path = tmp_path / "journal"
        DiskJournal(path).append(make_record(0))
        with open(path / LOG_NAME, "a", encoding="utf-8") as handle:
            handle.write("{not json\n")
        with pytest.raises(HistoryError):
            open_journal(path)

    def test_open_missing_journal_raises(self, tmp_path):
        with pytest.raises(HistoryError):
            open_journal(tmp_path / "missing")

    def test_path_collision_with_file_raises(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("x")
        with pytest.raises(HistoryError):
            DiskJournal(target)

    def test_corrupt_manifest_raises(self, tmp_path):
        path = tmp_path / "journal"
        path.mkdir()
        (path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(HistoryError):
            DiskJournal(path)

    def test_resume_drops_a_crash_orphan_tail(self, tmp_path):
        """A data tail with no log line (crash between the two writes) must
        not shift the offsets of post-resume appends."""
        path = tmp_path / "journal"
        journal = DiskJournal(path)
        journal.append(make_record(0, patterns=((("a",), 5),)))
        journal.close()
        # Simulate the crash: orphan record bytes flushed, log line lost.
        orphan = make_record(1, patterns=((("b",), 2),))
        with open(path / DATA_NAME, "ab") as handle:
            handle.write(orphan.to_bytes())
        resumed = DiskJournal(path)
        assert resumed.slide_ids() == [0]
        appended = make_record(1, patterns=((("c",), 7),))
        resumed.append(appended)
        resumed.close()
        reloaded = open_journal(path)
        assert reloaded.slide_ids() == [0, 1]
        # The appended record — not the orphan — is what resume returns.
        assert reloaded.record(1) == appended
        assert reloaded.record(1).patterns == ((("c",), 7),)

    def test_truncated_data_file_raises(self, tmp_path):
        path = tmp_path / "journal"
        journal = DiskJournal(path)
        journal.append(make_record(0))
        journal.close()
        data = (path / DATA_NAME).read_bytes()
        (path / DATA_NAME).write_bytes(data[:-4])
        with pytest.raises(HistoryError):
            open_journal(path)
