"""Tiered retention: hot trim, warm compaction, cold archive, crash recovery."""

import json

import pytest

from repro.exceptions import HistoryError
from repro.history.journal import (
    COMPACT_FORMAT,
    COMPACT_MARKER_NAME,
    DATA_NAME,
    LOG_NAME,
    DiskJournal,
    SlideRecord,
    truncate_journal,
)
from repro.history.retention import (
    ARCHIVE_NAME,
    RetentionPolicy,
    TieredJournal,
    summarise_record,
)


def make_record(slide_id=0, patterns=None, **overrides):
    fields = {
        "slide_id": slide_id,
        "first_batch": max(0, slide_id - 2),
        "last_batch": slide_id,
        "num_columns": 30,
        "minsup": 3,
        "patterns": patterns
        if patterns is not None
        else ((("a",), 7 + slide_id), (("a", "b"), 4)),
        "timings": {},
    }
    fields.update(overrides)
    return SlideRecord(**fields)


class TestRetentionPolicy:
    def test_validation(self):
        with pytest.raises(HistoryError):
            RetentionPolicy(hot_slides=0)
        with pytest.raises(HistoryError):
            RetentionPolicy(warm_slides=0)
        with pytest.raises(HistoryError):
            RetentionPolicy(cold_sample_every=0)

    def test_defaults_disable_the_bounds(self):
        policy = RetentionPolicy()
        assert policy.hot_slides is None
        assert policy.warm_slides is None


class TestHotTier:
    def test_max_resident_bounds_the_in_memory_records(self, tmp_path):
        journal = DiskJournal(tmp_path / "j", max_resident=3)
        for slide in range(8):
            journal.append(make_record(slide))
        assert [r.slide_id for r in journal.records()] == [5, 6, 7]
        journal.close()
        # The trimmed records are still on disk — an unbounded reopen
        # serves all of them.
        reopened = DiskJournal(tmp_path / "j")
        assert [r.slide_id for r in reopened.records()] == list(range(8))
        reopened.close()

    def test_max_resident_applies_on_reopen(self, tmp_path):
        journal = DiskJournal(tmp_path / "j")
        for slide in range(6):
            journal.append(make_record(slide))
        journal.close()
        reopened = DiskJournal(tmp_path / "j", max_resident=2)
        assert [r.slide_id for r in reopened.records()] == [4, 5]
        reopened.close()

    def test_max_resident_must_be_positive(self, tmp_path):
        with pytest.raises(HistoryError):
            DiskJournal(tmp_path / "j", max_resident=0)


class TestCompaction:
    def test_compact_retires_the_oldest_and_rebases(self, tmp_path):
        journal = DiskJournal(tmp_path / "j")
        for slide in range(7):
            journal.append(make_record(slide))
        aged_ids = []
        retired = journal.compact(
            3, on_aged=lambda aged: aged_ids.extend(r.slide_id for r, _ in aged)
        )
        assert retired == 4
        assert aged_ids == [0, 1, 2, 3]
        journal.close()
        reopened = DiskJournal(tmp_path / "j")
        assert [r.slide_id for r in reopened.records()] == [4, 5, 6]
        # Offsets were rebased: the kept bytes start at 0 again.
        first = json.loads((tmp_path / "j" / LOG_NAME).read_text().splitlines()[0])
        assert first["offset"] == 0
        # Appends continue after a compaction.
        reopened.append(make_record(7))
        assert reopened.last_slide_id == 7
        reopened.close()

    def test_compact_below_threshold_is_a_no_op(self, tmp_path):
        journal = DiskJournal(tmp_path / "j")
        for slide in range(3):
            journal.append(make_record(slide))
        assert journal.compact(5) == 0
        journal.close()

    def test_marker_crash_before_data_swap_abandons(self, tmp_path):
        journal = DiskJournal(tmp_path / "j")
        for slide in range(5):
            journal.append(make_record(slide))
        journal.close()
        size = (tmp_path / "j" / DATA_NAME).stat().st_size
        marker = {
            "format": COMPACT_FORMAT,
            "data_size_before": size,
            "base_offset": 100,
            "keep_first_slide_id": 3,
        }
        (tmp_path / "j" / COMPACT_MARKER_NAME).write_text(json.dumps(marker))
        reopened = DiskJournal(tmp_path / "j")
        # Nothing was swapped yet, so the attempt is abandoned whole.
        assert [r.slide_id for r in reopened.records()] == list(range(5))
        assert not (tmp_path / "j" / COMPACT_MARKER_NAME).exists()
        reopened.close()

    def test_marker_crash_between_swaps_completes_the_log(self, tmp_path):
        journal = DiskJournal(tmp_path / "j")
        for slide in range(5):
            journal.append(make_record(slide))
        journal.close()
        directory = tmp_path / "j"
        entries = [
            json.loads(line)
            for line in (directory / LOG_NAME).read_text().splitlines()
        ]
        base = entries[3]["offset"]
        data = (directory / DATA_NAME).read_bytes()
        # Simulate the crash window: data already swapped, log still old.
        (directory / DATA_NAME).write_bytes(data[base:])
        marker = {
            "format": COMPACT_FORMAT,
            "data_size_before": len(data),
            "base_offset": base,
            "keep_first_slide_id": 3,
        }
        (directory / COMPACT_MARKER_NAME).write_text(json.dumps(marker))
        reopened = DiskJournal(directory)
        assert [r.slide_id for r in reopened.records()] == [3, 4]
        assert not (directory / COMPACT_MARKER_NAME).exists()
        reopened.close()

    def test_unrecoverable_marker_state_raises(self, tmp_path):
        journal = DiskJournal(tmp_path / "j")
        for slide in range(5):
            journal.append(make_record(slide))
        journal.close()
        directory = tmp_path / "j"
        marker = {
            "format": COMPACT_FORMAT,
            "data_size_before": 10_000_000,
            "base_offset": 100,
            "keep_first_slide_id": 3,
        }
        (directory / COMPACT_MARKER_NAME).write_text(json.dumps(marker))
        with pytest.raises(HistoryError, match="unrecoverable"):
            DiskJournal(directory)


class TestTieredJournal:
    def tiered(self, tmp_path, **policy):
        return TieredJournal(tmp_path / "j", RetentionPolicy(**policy))

    def test_warm_overflow_archives_then_compacts(self, tmp_path):
        journal = self.tiered(tmp_path, warm_slides=4, cold_sample_every=3)
        for slide in range(10):
            journal.append(make_record(slide))
        assert journal.warm_count == 4
        assert journal.cold_count == 6
        assert len(journal) == 10
        assert [r.slide_id for r in journal.records()][-4:] == [6, 7, 8, 9]
        cold = journal.cold_records()
        assert [entry["slide_id"] for entry in cold] == list(range(6))
        # Aggregates on every line; full pattern maps only on sampled ids.
        assert all(entry["pattern_count"] == 2 for entry in cold)
        assert [e["slide_id"] for e in cold if "patterns" in e] == [0, 3]
        assert cold[3]["max_support"] == 10  # slide 3's top support
        journal.close()

    def test_sampled_lines_keep_the_full_pattern_map(self):
        line = summarise_record(make_record(0), sample_every=1)
        assert line["patterns"] == {"a": 7, "a b": 4}
        sparse = summarise_record(make_record(1), sample_every=2)
        assert "patterns" not in sparse

    def test_reopen_restores_both_tiers(self, tmp_path):
        journal = self.tiered(tmp_path, warm_slides=3)
        for slide in range(8):
            journal.append(make_record(slide))
        journal.close()
        reopened = self.tiered(tmp_path, warm_slides=3)
        assert reopened.warm_count == 3
        assert reopened.cold_count == 5
        assert len(reopened) == 8
        # Appending continues the slide sequence and keeps compacting.
        reopened.append(make_record(8))
        assert reopened.warm_count == 3
        assert reopened.cold_count == 6
        reopened.close()

    def test_archive_deduplicates_on_re_aged_records(self, tmp_path):
        # A journal holding slides 0-3, not yet compacted ...
        plain = DiskJournal(tmp_path / "j")
        for slide in range(4):
            plain.append(make_record(slide))
        plain.close()
        # ... whose previous compaction attempt archived slides 0-1 but
        # crashed before the file swap (the attempt was abandoned, the
        # archive lines stayed — the §12 archive-then-swap crash window).
        archive = tmp_path / "j" / ARCHIVE_NAME
        with open(archive, "w", encoding="utf-8") as handle:
            for slide in range(2):
                handle.write(
                    json.dumps(
                        summarise_record(make_record(slide), 10), sort_keys=True
                    )
                    + "\n"
                )
        journal = self.tiered(tmp_path, warm_slides=2)
        assert journal.cold_count == 2
        # The next overflow re-ages slides 0-2; 0-1 must not re-archive.
        journal.append(make_record(4))
        lines = archive.read_text().splitlines()
        assert [json.loads(line)["slide_id"] for line in lines] == [0, 1, 2]
        assert journal.cold_count == 3
        journal.close()

    def test_hot_bound_flows_through_to_the_disk_journal(self, tmp_path):
        journal = self.tiered(tmp_path, hot_slides=2)
        for slide in range(6):
            journal.append(make_record(slide))
        assert [r.slide_id for r in journal.records()] == [4, 5]
        assert len(journal) == 6  # every slide still counted
        journal.close()

    def test_disk_size_includes_the_archive(self, tmp_path):
        journal = self.tiered(tmp_path, warm_slides=2)
        for slide in range(6):
            journal.append(make_record(slide))
        with_archive = journal.disk_size_bytes()
        archive_size = (tmp_path / "j" / ARCHIVE_NAME).stat().st_size
        assert archive_size > 0
        assert with_archive > archive_size
        journal.close()

    def test_corrupt_archive_line_is_a_clean_error(self, tmp_path):
        journal = self.tiered(tmp_path, warm_slides=2)
        for slide in range(4):
            journal.append(make_record(slide))
        journal.close()
        archive = tmp_path / "j" / ARCHIVE_NAME
        archive.write_text(archive.read_text() + "{not json\n")
        with pytest.raises(HistoryError, match="corrupt archive"):
            self.tiered(tmp_path, warm_slides=2)

    def test_truncate_after_compaction_uses_slide_ids(self, tmp_path):
        journal = self.tiered(tmp_path, warm_slides=4)
        for slide in range(10):
            journal.append(make_record(slide))
        journal.close()
        # Offsets were rebased by compaction; rollback is keyed by slide
        # id, so it still lands exactly on the requested record.
        kept, size = truncate_journal(tmp_path / "j", 7)
        assert kept == 2  # slides 6 and 7 remain of the warm tier
        reopened = DiskJournal(tmp_path / "j")
        assert [r.slide_id for r in reopened.records()] == [6, 7]
        assert reopened.data_size == size
        reopened.close()
