"""Index correctness: every query must match a brute-force journal scan."""

import random

import pytest

from repro.exceptions import HistoryError
from repro.history.journal import MemoryJournal, SlideRecord
from repro.history.query import (
    JournalIndex,
    brute_force_sub_patterns,
    brute_force_super_patterns,
    brute_force_support_history,
)

ITEMS = [chr(ord("a") + index) for index in range(10)]


def random_journal(seed, slides=12, max_patterns=14):
    """A randomized journal: random itemsets with random supports per slide."""
    rng = random.Random(seed)
    journal = MemoryJournal()
    for slide in range(slides):
        patterns = {}
        for _ in range(rng.randint(0, max_patterns)):
            size = rng.randint(1, 4)
            items = tuple(sorted(rng.sample(ITEMS, size)))
            patterns[items] = rng.randint(1, 40)
        journal.append(
            SlideRecord(
                slide_id=slide,
                first_batch=max(0, slide - 3),
                last_batch=slide,
                num_columns=60,
                minsup=2,
                patterns=tuple(patterns.items()),
            )
        )
    return journal


def random_queries(rng, count=40):
    for _ in range(count):
        size = rng.randint(1, 4)
        yield tuple(sorted(rng.sample(ITEMS, size)))


@pytest.mark.parametrize("seed", [1, 7, 23, 99])
class TestIndexMatchesBruteForce:
    def test_super_pattern_match(self, seed):
        journal = random_journal(seed)
        index = JournalIndex.from_journal(journal)
        rng = random.Random(seed + 1000)
        for query in random_queries(rng):
            expected = brute_force_super_patterns(journal.records(), query)
            assert sorted(index.super_patterns(query)) == sorted(expected)

    def test_super_pattern_match_at_one_slide(self, seed):
        journal = random_journal(seed)
        index = JournalIndex.from_journal(journal)
        rng = random.Random(seed + 2000)
        for query in random_queries(rng, count=15):
            slide = rng.choice(journal.slide_ids())
            expected = brute_force_super_patterns(
                journal.records(), query, slide_id=slide
            )
            assert sorted(index.super_patterns(query, slide_id=slide)) == sorted(
                expected
            )

    def test_sub_pattern_match(self, seed):
        journal = random_journal(seed)
        index = JournalIndex.from_journal(journal)
        rng = random.Random(seed + 3000)
        for query in random_queries(rng):
            expected = brute_force_sub_patterns(journal.records(), query)
            assert index.sub_patterns(query) == expected

    def test_support_history(self, seed):
        journal = random_journal(seed)
        index = JournalIndex.from_journal(journal)
        rng = random.Random(seed + 4000)
        for query in random_queries(rng):
            expected = brute_force_support_history(journal.records(), query)
            assert index.support_history(query) == expected

    def test_first_and_last_frequent(self, seed):
        journal = random_journal(seed)
        index = JournalIndex.from_journal(journal)
        rng = random.Random(seed + 5000)
        for query in random_queries(rng):
            frequent_slides = [
                record.slide_id
                for record in journal
                if record.support_of(query) is not None
            ]
            assert index.first_frequent(query) == (
                frequent_slides[0] if frequent_slides else None
            )
            assert index.last_frequent(query) == (
                frequent_slides[-1] if frequent_slides else None
            )

    def test_top_k(self, seed):
        journal = random_journal(seed)
        index = JournalIndex.from_journal(journal)
        for record in journal:
            ranked = sorted(
                record.patterns, key=lambda entry: (-entry[1], len(entry[0]), entry[0])
            )
            for k in (1, 3, 50):
                expected = [
                    (record.slide_id, items, support)
                    for items, support in ranked[:k]
                ]
                assert index.top_k(k, slide_id=record.slide_id) == expected


class TestIndexBehaviour:
    def test_top_k_defaults_to_newest_slide(self):
        index = JournalIndex.from_journal(random_journal(5))
        assert all(slide == index.last_slide_id for slide, _, _ in index.top_k(3))

    def test_empty_index(self):
        index = JournalIndex(())
        assert len(index) == 0
        assert index.last_slide_id is None
        assert index.top_k(3) == []
        assert index.support_history(("a",)) == []
        assert index.stats()["slides"] == 0

    def test_unknown_slide_rejected(self):
        index = JournalIndex.from_journal(random_journal(3))
        with pytest.raises(HistoryError):
            index.patterns_at(999)
        with pytest.raises(HistoryError):
            index.super_patterns(("a",), slide_id=999)

    def test_empty_query_rejected(self):
        index = JournalIndex.from_journal(random_journal(3))
        with pytest.raises(HistoryError):
            index.support_history(())
        with pytest.raises(HistoryError):
            index.top_k(0)

    def test_extend_enforces_slide_order(self):
        journal = random_journal(11, slides=4)
        index = JournalIndex.from_journal(journal)
        with pytest.raises(HistoryError):
            index.extend([journal.record(0)])

    def test_stats_shape(self):
        journal = random_journal(2)
        stats = JournalIndex.from_journal(journal).stats()
        assert stats["slides"] == len(journal)
        assert stats["first_slide"] == 0
        assert stats["last_slide"] == journal.last_slide_id
        assert stats["pattern_rows"] == sum(r.pattern_count for r in journal)
        assert stats["distinct_patterns"] <= stats["pattern_rows"]
