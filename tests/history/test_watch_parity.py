"""Parity suite: the journal is byte-identical under every execution mode.

The acceptance bar of DESIGN.md §10, in the style of the §4/§5 suites:
for every ``workers`` × ``ingest_workers`` × ``max_inflight`` combination
the sealed slide records — and the record files a disk journal persists —
must be byte-identical to the sequential ``workers=0, ingest_workers=0``
run.  Wall-clock timings are the only thing allowed to differ, and they
live outside the record bytes.
"""

import hashlib

import pytest

from repro.core.miner import StreamSubgraphMiner
from repro.exceptions import MiningError
from repro.graph.edge_registry import EdgeRegistry
from repro.history.journal import DATA_NAME, DiskJournal, MemoryJournal
from repro.stream.stream import GraphStream, TransactionStream

from tests.ingest.test_ingest_parity import synthetic_snapshots

#: (mining workers, ingest workers, max_inflight) grid; None = sequential path.
EXECUTION_MODES = (
    (0, None, None),
    (0, 0, 1),
    (0, 2, 2),
    (2, 0, 8),
    (2, 2, 1),
)


def stream_transactions():
    registry = EdgeRegistry()
    return [registry.encode(snapshot) for snapshot in synthetic_snapshots(count=60)]


def run_watch(journal, transactions, workers, ingest_workers, max_inflight):
    miner = StreamSubgraphMiner(
        window_size=3, batch_size=15, algorithm="vertical", on_slide=journal.append
    )
    report = miner.watch(
        TransactionStream(transactions, batch_size=15),
        minsup=3,
        connected_only=False,
        workers=workers,
        ingest_workers=ingest_workers,
        max_inflight=max_inflight,
    )
    return miner, report


def data_digest(journal_dir):
    """Digest of the journal's deterministic data file (record bytes only)."""
    return hashlib.sha256((journal_dir / DATA_NAME).read_bytes()).hexdigest()


class TestJournalParity:
    @pytest.mark.parametrize("workers,ingest_workers,max_inflight", EXECUTION_MODES)
    def test_memory_journal_records_byte_identical(
        self, workers, ingest_workers, max_inflight
    ):
        transactions = stream_transactions()
        reference = MemoryJournal()
        run_watch(reference, transactions, 0, None, None)
        assert len(reference) == 4  # 60 transactions / 15 per batch
        journal = MemoryJournal()
        run_watch(journal, transactions, workers, ingest_workers, max_inflight)
        assert [record.to_bytes() for record in journal] == [
            record.to_bytes() for record in reference
        ], (
            f"workers={workers} ingest_workers={ingest_workers} "
            f"max_inflight={max_inflight} diverged"
        )

    @pytest.mark.parametrize("workers,ingest_workers,max_inflight", EXECUTION_MODES)
    def test_disk_journal_files_byte_identical(
        self, workers, ingest_workers, max_inflight, tmp_path
    ):
        transactions = stream_transactions()
        run_watch(DiskJournal(tmp_path / "seq"), transactions, 0, None, None)
        label = f"w{workers}i{ingest_workers}m{max_inflight}"
        run_watch(
            DiskJournal(tmp_path / label),
            transactions,
            workers,
            ingest_workers,
            max_inflight,
        )
        assert data_digest(tmp_path / label) == data_digest(tmp_path / "seq"), (
            f"workers={workers} ingest_workers={ingest_workers} "
            f"max_inflight={max_inflight} persisted different record bytes"
        )

    def test_graph_stream_watch_matches_transaction_path(self, tmp_path):
        """Snapshot streams journal identically to their encoded transactions."""
        snapshots = synthetic_snapshots(count=60)
        reference_registry = EdgeRegistry()
        reference = MemoryJournal()
        miner = StreamSubgraphMiner(
            window_size=3,
            batch_size=15,
            algorithm="vertical",
            registry=reference_registry,
            on_slide=reference.append,
        )
        miner.watch(
            GraphStream(snapshots, registry=reference_registry, batch_size=15),
            minsup=3,
            connected_only=False,
        )
        for ingest_workers in (0, 2):
            registry = EdgeRegistry()
            journal = MemoryJournal()
            parallel = StreamSubgraphMiner(
                window_size=3,
                batch_size=15,
                algorithm="vertical",
                registry=registry,
                on_slide=journal.append,
            )
            parallel.watch(
                GraphStream(snapshots, registry=registry, batch_size=15),
                minsup=3,
                connected_only=False,
                ingest_workers=ingest_workers,
            )
            assert [record.to_bytes() for record in journal] == [
                record.to_bytes() for record in reference
            ]


class TestWatchSemantics:
    def test_watch_report_shape(self):
        journal = MemoryJournal()
        miner, report = run_watch(journal, stream_transactions(), 0, None, None)
        assert report.slides == len(journal) == 4
        assert report.columns == miner.transaction_count
        assert report.last_record is journal.records()[-1]
        assert report.last_record.timings["mine_s"] >= 0.0

    def test_records_reflect_window_slides(self):
        journal = MemoryJournal()
        run_watch(journal, stream_transactions(), 0, None, None)
        records = journal.records()
        assert [record.slide_id for record in records] == [0, 1, 2, 3]
        # While the window fills, the batch range grows from slide 0 ...
        assert (records[0].first_batch, records[0].last_batch) == (0, 0)
        assert (records[2].first_batch, records[2].last_batch) == (0, 2)
        # ... and once full (window_size=3) the oldest batch starts evicting.
        assert (records[3].first_batch, records[3].last_batch) == (1, 3)
        assert all(record.minsup == 3 for record in records)

    def test_relative_minsup_resolved_per_slide(self):
        journal = MemoryJournal()
        miner = StreamSubgraphMiner(
            window_size=3, batch_size=10, algorithm="vertical", on_slide=journal.append
        )
        transactions = [("a",)] * 30
        miner.watch(
            TransactionStream(transactions, batch_size=10),
            minsup=0.5,
            connected_only=False,
        )
        # 50% of 10, 20 and 30 window transactions respectively.
        assert [record.minsup for record in journal] == [5, 10, 15]

    def test_multiple_sinks_all_notified(self):
        first, second = MemoryJournal(), MemoryJournal()
        miner = StreamSubgraphMiner(
            window_size=2, batch_size=5, algorithm="vertical", on_slide=first.append
        )
        miner.add_slide_sink(second.append)
        assert len(miner.slide_sinks) == 2
        miner.watch(
            TransactionStream([("a",), ("b",)] * 5, batch_size=5),
            minsup=2,
            connected_only=False,
        )
        assert [r.to_bytes() for r in first] == [r.to_bytes() for r in second]

    def test_non_callable_sink_rejected(self):
        miner = StreamSubgraphMiner(window_size=2, batch_size=5)
        with pytest.raises(MiningError):
            miner.add_slide_sink("not-callable")

    def test_watch_without_sinks_still_mines(self):
        miner = StreamSubgraphMiner(window_size=2, batch_size=5, algorithm="vertical")
        report = miner.watch(
            TransactionStream([("a",), ("a", "b")] * 5, batch_size=5),
            minsup=2,
            connected_only=False,
        )
        assert report.slides == 2
        assert report.last_record is not None
        assert report.last_record.support_of(("a",)) == 10

    def test_empty_stream_yields_empty_report(self):
        journal = MemoryJournal()
        miner = StreamSubgraphMiner(
            window_size=2, batch_size=5, on_slide=journal.append
        )
        report = miner.watch(
            TransactionStream([], batch_size=5), minsup=2, connected_only=False
        )
        assert report.slides == 0
        assert report.last_record is None
        assert len(journal) == 0

    def test_last_ingest_report_exposed_after_parallel_watch(self):
        miner = StreamSubgraphMiner(window_size=3, batch_size=15, algorithm="vertical")
        assert miner.last_ingest_report is None
        miner.watch(
            TransactionStream(stream_transactions(), batch_size=15),
            minsup=3,
            connected_only=False,
            ingest_workers=2,
            max_inflight=2,
        )
        report = miner.last_ingest_report
        assert report is not None
        assert report.batches == 4
        assert report.max_inflight == 2
