"""Query-algebra correctness: compiled plans vs the brute-force interpreter.

Extends the PR 5 randomized harness (``test_query.random_journal``): random
algebra expressions are evaluated under the cost-based planner, under naive
left-to-right evaluation, and by ``brute_force_query`` over the raw
records — all three must agree row-for-row.  The planner unit tests pin
the smallest-posting-first conjunct ordering and the Explain payload.
"""

import json
import random
import warnings

import pytest

from repro.exceptions import AlgebraError, HistoryError
from repro.history.algebra import (
    And,
    BecameFrequentWithin,
    Contains,
    Slides,
    brute_force_query,
    became_frequent_within,
    contained_in,
    contains,
    describe,
    evaluate,
    first_frequent_in,
    history,
    not_,
    or_,
    and_,
    parse_predicate,
    parse_query,
    select,
    slides,
    support_between,
    support_gte,
    to_json,
    top_k,
)
from repro.history.journal import MemoryJournal, SlideRecord
from repro.history.query import (
    JournalIndex,
    brute_force_sub_patterns,
    brute_force_super_patterns,
    brute_force_support_history,
)
from test_query import ITEMS, random_journal


def make_index(journal):
    return JournalIndex.from_journal(journal)


# ---------------------------------------------------------------------- #
# randomized expression generation (the equivalence suite's workload)
# ---------------------------------------------------------------------- #
def random_items(rng, max_size=4):
    size = rng.randint(1, max_size)
    return tuple(sorted(rng.sample(ITEMS, size)))


def random_leaf(rng):
    kind = rng.randrange(7)
    if kind == 0:
        return contains(*random_items(rng))
    if kind == 1:
        return contained_in(*random_items(rng))
    if kind == 2:
        return support_gte(rng.randint(0, 45))
    if kind == 3:
        lo = rng.randint(0, 30)
        return support_between(lo, lo + rng.randint(0, 20))
    if kind == 4:
        lo = rng.randint(-2, 13)
        return slides(lo, lo + rng.randint(0, 6))
    if kind == 5:
        lo = rng.randint(0, 11)
        return first_frequent_in(lo, lo + rng.randint(0, 5))
    return became_frequent_within(rng.randint(0, 4), of=random_items(rng, 2))


def random_predicate(rng, depth=0):
    if depth >= 2 or rng.random() < 0.45:
        return random_leaf(rng)
    kind = rng.randrange(3)
    if kind == 0:
        return and_(*(random_predicate(rng, depth + 1) for _ in range(rng.randint(2, 3))))
    if kind == 1:
        return or_(*(random_predicate(rng, depth + 1) for _ in range(rng.randint(2, 3))))
    return not_(random_predicate(rng, depth + 1))


def random_query(rng):
    kind = rng.randrange(4)
    if kind == 3:
        return history(*random_items(rng, 3))
    if kind == 2:
        return top_k(rng.randint(1, 8), where=random_predicate(rng))
    return select(random_predicate(rng))


@pytest.mark.parametrize("seed", [1, 7, 23, 99])
class TestPlannerMatchesBruteForce:
    def test_randomized_equivalence(self, seed):
        journal = random_journal(seed)
        index = make_index(journal)
        records = journal.records()
        rng = random.Random(seed + 5000)
        for _ in range(40):
            query = random_query(rng)
            oracle = brute_force_query(query, records)
            planner = evaluate(query, index, optimize=True)
            naive = evaluate(query, index, optimize=False)
            result = planner.curve if planner.kind == "history" else planner.matches
            ablation = naive.curve if naive.kind == "history" else naive.matches
            assert result == oracle, describe(query)
            assert ablation == oracle, describe(query)

    def test_json_round_trip(self, seed):
        rng = random.Random(seed + 9000)
        for _ in range(40):
            query = random_query(rng)
            encoded = to_json(query)
            json.dumps(encoded)  # JSON-serialisable all the way down
            assert parse_query(encoded) == query

    def test_explain_is_consistent(self, seed):
        journal = random_journal(seed)
        index = make_index(journal)
        rng = random.Random(seed + 13000)
        for _ in range(20):
            query = random_query(rng)
            explain = evaluate(query, index).explain
            assert explain["q_error"] >= 1.0
            assert explain["scanned"] >= 0
            assert explain["actual_rows"] >= 0
            assert explain["plan"], describe(query)


class TestLegacySurfaceEquivalence:
    """Every legacy query path is one algebra expression, byte-identical."""

    @pytest.mark.parametrize("seed", [3, 41])
    def test_legacy_queries_as_algebra(self, seed):
        journal = random_journal(seed)
        index = make_index(journal)
        records = journal.records()
        rng = random.Random(seed + 100)
        for _ in range(25):
            items = random_items(rng, 3)
            super_plan = select(contains(*items))
            assert evaluate(super_plan, index).matches == brute_force_super_patterns(
                records, items
            )
            sub_plan = select(contained_in(*items))
            assert evaluate(sub_plan, index).matches == brute_force_sub_patterns(
                records, items
            )
            curve_plan = history(*items)
            assert evaluate(curve_plan, index).curve == brute_force_support_history(
                records, items
            )
        # exact match == contains AND contained_in
        items = random_items(rng, 2)
        exact_plan = select(and_(contains(*items), contained_in(*items)))
        expected = [
            match
            for match in brute_force_super_patterns(records, items)
            if match[1] == items
        ]
        assert evaluate(exact_plan, index).matches == expected
        # legacy top_k == top_k over a one-slide range
        last = index.last_slide_id
        plan = top_k(5, where=slides(last, last))
        legacy = sorted(
            index.patterns_at(last).items(),
            key=lambda entry: (-entry[1], len(entry[0]), entry[0]),
        )[:5]
        assert evaluate(plan, index).matches == [
            (last, items, support) for items, support in legacy
        ]

    def test_deprecated_shims_warn_and_delegate(self):
        journal = random_journal(11)
        index = make_index(journal)
        records = journal.records()
        with pytest.warns(DeprecationWarning):
            assert index.super_patterns(("a",)) == brute_force_super_patterns(
                records, ("a",)
            )
        with pytest.warns(DeprecationWarning):
            assert index.sub_patterns(("a", "b")) == brute_force_sub_patterns(
                records, ("a", "b")
            )
        with pytest.warns(DeprecationWarning):
            assert index.support_history(("a",)) == brute_force_support_history(
                records, ("a",)
            )
        with pytest.warns(DeprecationWarning):
            index.top_k(3)

    def test_deprecated_shims_preserve_error_behaviour(self):
        index = make_index(random_journal(11))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(HistoryError):
                index.super_patterns(("a",), slide_id=999)
            with pytest.raises(HistoryError):
                index.top_k(0)
            with pytest.raises(HistoryError):
                index.top_k(1, slide_id=999)
            with pytest.raises(HistoryError):
                index.support_history(())


def controlled_journal():
    """One journal with a deliberately skewed posting distribution.

    Item ``a`` appears in every pattern (the biggest posting list); item
    ``j`` appears exactly once — the planner must drive from ``j``.
    """
    journal = MemoryJournal()
    for slide in range(4):
        patterns = {("a",): 9, ("a", "b"): 7, ("a", "c"): 6, ("a", "b", "c"): 4}
        if slide == 2:
            patterns[("a", "j")] = 3
        journal.append(
            SlideRecord(
                slide_id=slide,
                first_batch=slide,
                last_batch=slide,
                num_columns=20,
                minsup=2,
                patterns=tuple(patterns.items()),
            )
        )
    return journal


class TestPlannerOrdering:
    """The cost model: smallest posting first, naive = written order."""

    def test_conjunct_reorder_smallest_first(self):
        index = make_index(controlled_journal())
        # 'a' is written first; the planner must still drive from 'j'.
        query = select(and_(contains("a"), contains("j")))
        planned = evaluate(query, index, optimize=True)
        assert planned.explain["plan"][0].startswith("contains(j)")
        naive = evaluate(query, index, optimize=False)
        assert naive.explain["plan"][0].startswith("contains(a)")
        assert planned.matches == naive.matches
        # Driving from j's posting touches 1 row; from a's, every row.
        assert planned.explain["scanned"] == 1
        assert naive.explain["scanned"] == index.posting_total("a")

    def test_rarest_item_inside_one_contains(self):
        index = make_index(controlled_journal())
        # One leaf, two items: enumeration must use the rarer item's posting.
        query = select(contains("a", "j"))
        planned = evaluate(query, index, optimize=True)
        assert planned.explain["scanned"] == index.posting_total("j") == 1
        naive = evaluate(query, index, optimize=False)
        assert naive.explain["scanned"] == index.posting_total("a")
        assert planned.matches == naive.matches == [(2, ("a", "j"), 3)]

    def test_slide_range_pushdown(self):
        index = make_index(controlled_journal())
        query = select(and_(contains("a"), slides(1, 2)))
        evaluation = evaluate(query, index)
        # Only the 2 slides in range are enumerated: 4 + 5 postings of 'a'.
        assert evaluation.explain["scanned"] == 9
        assert {match[0] for match in evaluation.matches} == {1, 2}
        assert any("range" in line for line in evaluation.explain["plan"])

    def test_estimate_uses_known_posting_lengths(self):
        index = make_index(controlled_journal())
        evaluation = evaluate(select(contains("j")), index)
        assert evaluation.explain["estimated_scanned"] == index.posting_total("j")
        assert evaluation.explain["estimated_rows"] == 1
        assert evaluation.explain["actual_rows"] == 1
        assert evaluation.explain["q_error"] == 1.0

    def test_full_scan_when_no_indexable_conjunct(self):
        index = make_index(controlled_journal())
        evaluation = evaluate(select(support_gte(7)), index)
        total = sum(index.row_count(slide) for slide in index.slide_ids())
        assert evaluation.explain["scanned"] == total
        assert evaluation.explain["plan"][0].startswith("full-scan")
        assert all(match[2] >= 7 for match in evaluation.matches)


class TestParsing:
    def test_unknown_operator_path(self):
        with pytest.raises(AlgebraError) as excinfo:
            parse_query(
                {"select": {"where": {"and": [{"contains": ["a"]}, {"bogus": 1}]}}}
            )
        assert excinfo.value.path == "$.select.where.and[1].bogus"
        assert excinfo.value.code == "malformed-expression"

    def test_unknown_shape(self):
        with pytest.raises(AlgebraError) as excinfo:
            parse_query({"frobnicate": {}})
        assert excinfo.value.path == "$.frobnicate"

    def test_multi_key_object_rejected(self):
        with pytest.raises(AlgebraError):
            parse_query({"select": {"where": {"contains": ["a"]}}, "top_k": {"k": 1}})

    def test_empty_items_rejected_with_path(self):
        with pytest.raises(AlgebraError) as excinfo:
            parse_predicate({"contains": []})
        assert excinfo.value.path == "$.contains"

    def test_bad_bounds_and_k(self):
        with pytest.raises(AlgebraError):
            parse_predicate({"slides": [5, 2]})
        with pytest.raises(AlgebraError):
            parse_predicate({"support_between": [9, 1]})
        with pytest.raises(AlgebraError) as excinfo:
            parse_query({"top_k": {"k": 0}})
        assert excinfo.value.path == "$.top_k.k"

    def test_became_frequent_within_shape(self):
        parsed = parse_predicate(
            {"became_frequent_within": {"k": 2, "of": ["b", "a"]}}
        )
        assert parsed == BecameFrequentWithin(2, ("a", "b"))
        with pytest.raises(AlgebraError):
            parse_predicate({"became_frequent_within": {"k": 2}})

    def test_constructor_validation(self):
        with pytest.raises(AlgebraError):
            contains()
        with pytest.raises(AlgebraError):
            support_gte(-1)
        with pytest.raises(AlgebraError):
            top_k(0)
        with pytest.raises(AlgebraError):
            Slides(7, 3)
        with pytest.raises(AlgebraError):
            And(())

    def test_constructors_normalise_items(self):
        assert Contains(("b", "a", "b")).items == ("a", "b")
        assert contains("c", "a").items == ("a", "c")

    def test_and_or_single_child_collapse(self):
        leaf = contains("a")
        assert and_(leaf) is leaf
        assert or_(leaf) is leaf


class TestEvaluationShapes:
    def test_history_payload_fields(self):
        journal = random_journal(5)
        index = make_index(journal)
        evaluation = evaluate(history("a"), index)
        payload = evaluation.payload()
        assert payload["first_frequent"] == index.first_frequent(("a",))
        assert payload["last_frequent"] == index.last_frequent(("a",))
        assert payload["peak_support"] == max(
            (point["support"] for point in payload["history"]), default=0
        )
        assert payload["explain"]["q_error"] == 1.0

    def test_select_orders_by_slide_size_items(self):
        index = make_index(random_journal(17))
        matches = evaluate(select(contains("a")), index).matches
        keys = [(slide, len(items), items) for slide, items, _ in matches]
        assert keys == sorted(keys)

    def test_top_k_orders_by_support(self):
        index = make_index(random_journal(17))
        matches = evaluate(top_k(6), index).matches
        supports = [support for _, _, support in matches]
        assert supports == sorted(supports, reverse=True)

    def test_empty_index(self):
        index = JournalIndex(())
        assert evaluate(select(contains("a")), index).matches == []
        assert evaluate(top_k(3), index).matches == []
        evaluation = evaluate(history("a"), index)
        assert evaluation.curve == [] and evaluation.first_frequent is None
