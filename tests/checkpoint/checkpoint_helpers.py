"""Shared helpers for the checkpoint suite (DESIGN.md §12)."""

from __future__ import annotations

from repro.core.miner import StreamSubgraphMiner
from repro.datasets.synthetic import IBMSyntheticGenerator

#: Window/batch geometry shared by the suite: 200 transactions in batches
#: of 10 yields 20 slides — enough to crash in, replay, and still differ
#: from the window size.
BATCH_SIZE = 10
WINDOW_SIZE = 3
MINSUP = 3


def make_transactions(count=200, seed=11):
    return IBMSyntheticGenerator(seed=seed).generate(count)


def make_miner(on_slide=None, algorithm="vertical"):
    return StreamSubgraphMiner(
        window_size=WINDOW_SIZE,
        batch_size=BATCH_SIZE,
        algorithm=algorithm,
        on_slide=on_slide,
    )
