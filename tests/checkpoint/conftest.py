"""Fixtures for the checkpoint suite (helpers live in checkpoint_helpers)."""

import pytest

from checkpoint_helpers import make_transactions


@pytest.fixture(scope="session")
def transactions():
    return make_transactions()
