"""Kill/restart gate: SIGKILL a live ``repro watch``, resume, compare bytes.

The end-to-end §12 proof, with a real process and a real SIGKILL (no
cooperative shutdown, no atexit hooks): a throttled watch sealing
snapshots is killed mid-stream, then ``repro watch --resume`` restores
from the latest snapshot and replays the suffix — and the continued
``journal.dat`` must equal an uninterrupted run's, byte for byte.  Runs
sequentially and with ``--workers 2 --ingest-workers 2`` (the killed
process group then includes live pool workers).
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.datasets.fimi import write_fimi

from checkpoint_helpers import make_transactions

DEADLINE_S = 90.0


def sweep_shm_segments(before):
    """Unlink shared-memory segments the SIGKILLed group left behind.

    A killed process group cannot run its own cleanup, so any segment
    created after ``before`` was taken is the victim's leak.
    """
    shm = Path("/dev/shm")
    if not shm.is_dir():  # pragma: no cover - non-Linux fallback
        return
    for segment in shm.glob("psm_*"):
        if segment not in before:
            try:
                segment.unlink()
            except OSError:  # pragma: no cover - raced with reaper
                pass


def snapshot_shm_segments():
    shm = Path("/dev/shm")
    return set(shm.glob("psm_*")) if shm.is_dir() else set()


def repro_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def watch_args(source, journal, extra=()):
    return [
        sys.executable, "-m", "repro", "watch", str(source),
        "--batch-size", "10", "--window", "3", "--minsup", "3",
        "--journal", str(journal), *extra,
    ]


@pytest.mark.parametrize(
    "parallel",
    [(), ("--workers", "2", "--ingest-workers", "2")],
    ids=["sequential", "parallel"],
)
def test_sigkill_then_resume_is_byte_identical(tmp_path, parallel):
    source = tmp_path / "stream.fimi"
    write_fimi(source, make_transactions(count=300, seed=23))
    env = repro_env()

    # The uninterrupted reference run (no throttle, no checkpoints).
    subprocess.run(
        watch_args(source, tmp_path / "ref"),
        env=env, check=True, capture_output=True, timeout=DEADLINE_S,
    )
    reference = (tmp_path / "ref" / "journal.dat").read_bytes()
    assert reference

    # The victim: throttled so the kill lands mid-stream, sealing a
    # snapshot every 2 slides.  Its own session/process group, so the
    # SIGKILL also takes out any pool workers it spawned.
    checkpoint_dir = tmp_path / "chk"
    shm_before = snapshot_shm_segments()
    victim = subprocess.Popen(
        watch_args(
            source, tmp_path / "live",
            extra=(
                "--checkpoint-dir", str(checkpoint_dir),
                "--checkpoint-every", "2", "--throttle-ms", "150", *parallel,
            ),
        ),
        env=env, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + DEADLINE_S
        while time.monotonic() < deadline:
            if any(checkpoint_dir.glob("chk-*")):
                break
            if victim.poll() is not None:
                pytest.fail(
                    f"watch exited (rc={victim.returncode}) before sealing "
                    "a snapshot — cannot kill it mid-stream"
                )
            time.sleep(0.05)
        else:
            pytest.fail("no snapshot sealed before the deadline")
        os.killpg(victim.pid, signal.SIGKILL)
        assert victim.wait(timeout=DEADLINE_S) == -signal.SIGKILL
    finally:
        if victim.poll() is None:  # pragma: no cover - cleanup on failure
            os.killpg(victim.pid, signal.SIGKILL)
            victim.wait()
        sweep_shm_segments(shm_before)

    # The journal must be strictly mid-stream: the kill was real.
    crashed = (tmp_path / "live" / "journal.dat").read_bytes()
    assert len(crashed) < len(reference)

    # Resume: restore the snapshot, replay the suffix, converge exactly.
    completed = subprocess.run(
        watch_args(
            source, tmp_path / "live",
            extra=(
                "--checkpoint-dir", str(checkpoint_dir),
                "--checkpoint-every", "2", "--resume", *parallel,
            ),
        ),
        env=env, capture_output=True, text=True, timeout=DEADLINE_S,
    )
    assert completed.returncode == 0, completed.stderr
    assert "resumed from slide" in completed.stdout
    assert (tmp_path / "live" / "journal.dat").read_bytes() == reference
