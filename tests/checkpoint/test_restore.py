"""Restore parity: hydrate + resume reproduces the journal byte-identically.

The §12 acceptance bar: after a crash at any point, restoring from the
latest sealed snapshot and replaying only the un-checkpointed stream
suffix must continue ``journal.dat`` with exactly the bytes an
uninterrupted run would have written — including when the crash fell in
the window between the journal's data append and its log line (the
orphan-tail case), and under parallel mining + parallel ingestion.
"""

import pytest

from repro.checkpoint import CheckpointManager, Checkpointer
from repro.core.miner import StreamSubgraphMiner
from repro.exceptions import CheckpointError, HistoryError
from repro.history.journal import DATA_NAME, DiskJournal, truncate_journal
from repro.stream.stream import TransactionStream

from checkpoint_helpers import BATCH_SIZE, MINSUP, make_miner, make_transactions

CRASH_AT_TRANSACTION = 70  # mid-stream: 7 slides mined, snapshot at slide 5


def run_watch(journal_dir, units, miner=None, resume_from=None, workers=0,
              ingest_workers=0, checkpoint_dir=None, every=2):
    journal = DiskJournal(journal_dir)
    if miner is None:
        miner = make_miner(on_slide=journal.append)
    checkpointer = None
    if checkpoint_dir is not None:
        manager = CheckpointManager(checkpoint_dir, keep=2)
        checkpointer = Checkpointer(manager, miner, journal=journal, every=every)
        miner.add_slide_sink(checkpointer)
    with miner:
        miner.watch(
            TransactionStream(units, batch_size=BATCH_SIZE),
            MINSUP,
            connected_only=False,
            workers=workers,
            ingest_workers=ingest_workers or None,
            resume_from=resume_from,
        )
    journal.close()
    return checkpointer


def restore_and_replay(journal_dir, checkpoint_dir, units, workers=0,
                       ingest_workers=0):
    checkpoint = CheckpointManager(checkpoint_dir, keep=2).latest()
    assert checkpoint is not None
    truncate_journal(journal_dir, checkpoint.slide_id)
    journal = DiskJournal(journal_dir)
    miner = StreamSubgraphMiner.hydrate(
        checkpoint, algorithm="vertical", on_slide=journal.append
    )
    run_watch(
        journal_dir,
        units,
        miner=miner,
        resume_from=checkpoint,
        workers=workers,
        ingest_workers=ingest_workers,
    )
    return checkpoint


class TestRestoreParity:
    @pytest.mark.parametrize(
        "workers,ingest_workers", [(0, 0), (2, 2)], ids=["sequential", "parallel"]
    )
    def test_resume_continues_byte_identically(
        self, tmp_path, transactions, workers, ingest_workers
    ):
        run_watch(tmp_path / "ref", transactions)
        prefix = transactions[:CRASH_AT_TRANSACTION]
        run_watch(
            tmp_path / "live",
            prefix,
            checkpoint_dir=tmp_path / "chk",
            workers=workers,
            ingest_workers=ingest_workers,
        )
        checkpoint = restore_and_replay(
            tmp_path / "live",
            tmp_path / "chk",
            transactions,
            workers=workers,
            ingest_workers=ingest_workers,
        )
        assert checkpoint.slide_id == 5
        assert (tmp_path / "live" / DATA_NAME).read_bytes() == (
            tmp_path / "ref" / DATA_NAME
        ).read_bytes()

    def test_orphan_tail_composes_with_snapshot_restore(
        self, tmp_path, transactions
    ):
        """Crash between the journal data append and its log line.

        The crashed run leaves journal.dat with a trailing half-record no
        log line references.  Resume must drop the orphan (the rollback to
        the checkpointed slide subsumes it) and still continue
        byte-identically.
        """
        run_watch(tmp_path / "ref", transactions)
        prefix = transactions[:CRASH_AT_TRANSACTION]
        run_watch(tmp_path / "live", prefix, checkpoint_dir=tmp_path / "chk")
        data_path = tmp_path / "live" / DATA_NAME
        with open(data_path, "ab") as handle:
            handle.write(b"\x13half-a-record-no-log-line")
        restore_and_replay(tmp_path / "live", tmp_path / "chk", transactions)
        assert data_path.read_bytes() == (tmp_path / "ref" / DATA_NAME).read_bytes()

    def test_resume_without_checkpoint_restarts_from_scratch(
        self, tmp_path, transactions
    ):
        """A SIGKILL before the first seal: reset the journal, rerun fully."""
        run_watch(tmp_path / "ref", transactions)
        prefix = transactions[:BATCH_SIZE]  # one slide, no snapshot at every=2
        checkpointer = run_watch(
            tmp_path / "live", prefix, checkpoint_dir=tmp_path / "chk"
        )
        assert checkpointer.snapshots_sealed == 0
        assert CheckpointManager(tmp_path / "chk").latest() is None
        kept, size = truncate_journal(tmp_path / "live", -1)
        assert (kept, size) == (0, 0)
        run_watch(tmp_path / "live", transactions)
        assert (tmp_path / "live" / DATA_NAME).read_bytes() == (
            tmp_path / "ref" / DATA_NAME
        ).read_bytes()

    def test_hydrated_miner_mines_like_the_original(self, tmp_path, transactions):
        miner = make_miner()
        miner.add_transactions(transactions[:50])
        reference = miner.mine(MINSUP, connected_only=False)
        checkpoint = CheckpointManager(tmp_path / "chk").seal(miner)
        restored = StreamSubgraphMiner.hydrate(checkpoint, algorithm="vertical")
        assert restored.batches_consumed == miner.batches_consumed
        result = restored.mine(MINSUP, connected_only=False)
        assert {
            frozenset(p.sorted_items()): p.support for p in result
        } == {frozenset(p.sorted_items()): p.support for p in reference}


class TestRestoreValidation:
    def seal_one(self, tmp_path, transactions):
        miner = make_miner()
        miner.add_transactions(transactions[:50])
        return CheckpointManager(tmp_path / "chk").seal(miner)

    def test_watch_requires_hydration_first(self, tmp_path, transactions):
        checkpoint = self.seal_one(tmp_path, transactions)
        fresh = make_miner()  # right geometry, but an empty window
        with pytest.raises(CheckpointError, match="hydrate"):
            fresh.watch(
                TransactionStream(transactions, batch_size=BATCH_SIZE),
                MINSUP,
                resume_from=checkpoint,
            )

    def test_watch_rejects_a_window_size_mismatch(self, tmp_path, transactions):
        checkpoint = self.seal_one(tmp_path, transactions)
        other = StreamSubgraphMiner(
            window_size=5, batch_size=BATCH_SIZE, algorithm="vertical"
        )
        with pytest.raises(CheckpointError, match="window size"):
            other.watch(
                TransactionStream(transactions, batch_size=BATCH_SIZE),
                MINSUP,
                resume_from=checkpoint,
            )

    def test_truncate_rejects_a_compacted_away_slide(self, tmp_path, transactions):
        run_watch(tmp_path / "live", transactions[:CRASH_AT_TRANSACTION])
        with pytest.raises(HistoryError, match="slide 99"):
            truncate_journal(tmp_path / "live", 99)

    def test_truncate_needs_a_journal_for_a_real_slide(self, tmp_path):
        with pytest.raises(HistoryError, match="no pattern journal"):
            truncate_journal(tmp_path / "missing", 5)
