"""Unit tests for the snapshot layer: seal, validate, load, prune."""

import json

import pytest

from repro.checkpoint import CheckpointManager, Checkpointer
from repro.checkpoint.snapshot import MANIFEST_NAME, REGISTRY_NAME
from repro.exceptions import CheckpointError
from repro.history.journal import MemoryJournal
from repro.stream.stream import TransactionStream

from checkpoint_helpers import BATCH_SIZE, MINSUP, make_miner, make_transactions


def warm_miner(batches=5):
    miner = make_miner()
    miner.add_transactions(make_transactions(count=batches * BATCH_SIZE))
    return miner


class TestSeal:
    def test_seal_writes_manifest_segments_and_registry(self, tmp_path):
        miner = warm_miner()
        manager = CheckpointManager(tmp_path / "chk")
        checkpoint = manager.seal(miner)
        assert checkpoint.path == tmp_path / "chk" / "chk-00000004"
        assert checkpoint.slide_id == 4
        assert checkpoint.batches_consumed == 5
        assert (checkpoint.path / MANIFEST_NAME).exists()
        assert (checkpoint.path / REGISTRY_NAME).exists()
        segment_files = sorted((checkpoint.path / "segments").iterdir())
        # Only the window-resident segments are snapshotted.
        assert len(segment_files) == len(miner.matrix.segments())

    def test_seal_empty_window_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path / "chk")
        with pytest.raises(CheckpointError):
            manager.seal(make_miner())

    def test_reseal_same_slide_is_idempotent(self, tmp_path):
        miner = warm_miner()
        manager = CheckpointManager(tmp_path / "chk")
        first = manager.seal(miner)
        manifest_bytes = (first.path / MANIFEST_NAME).read_bytes()
        again = manager.seal(miner)
        assert again.slide_id == first.slide_id
        assert (first.path / MANIFEST_NAME).read_bytes() == manifest_bytes
        assert len(manager.snapshot_paths()) == 1

    def test_seal_replaces_a_partial_snapshot(self, tmp_path):
        miner = warm_miner()
        manager = CheckpointManager(tmp_path / "chk")
        checkpoint = manager.seal(miner)
        # A crash mid-prune leaves a directory without a manifest; the
        # next seal of the same slide must replace it, not trust it.
        (checkpoint.path / MANIFEST_NAME).unlink()
        resealed = manager.seal(miner)
        assert (resealed.path / MANIFEST_NAME).exists()
        assert manager.load(resealed.path).slide_id == checkpoint.slide_id

    def test_seal_records_journal_position(self, tmp_path):
        journal = MemoryJournal()
        miner = make_miner(on_slide=journal.append)
        miner.watch(
            TransactionStream(make_transactions(count=50), batch_size=BATCH_SIZE),
            MINSUP,
            connected_only=False,
        )
        checkpoint = CheckpointManager(tmp_path / "chk").seal(miner, journal=journal)
        # The journal sink ran for every slide before the seal, so the
        # sealed position includes the checkpointed slide itself.
        assert checkpoint.journal_records == len(journal) == 5

    def test_manager_validates_construction(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path, keep=0)
        rogue = tmp_path / "file"
        rogue.write_text("x")
        with pytest.raises(CheckpointError):
            CheckpointManager(rogue)


class TestLoad:
    def test_load_round_trips_the_sealed_state(self, tmp_path):
        miner = warm_miner()
        manager = CheckpointManager(tmp_path / "chk")
        sealed = manager.seal(miner)
        loaded = manager.load(sealed.path)
        assert loaded.slide_id == sealed.slide_id
        assert loaded.window_size == sealed.window_size
        assert loaded.batch_size == sealed.batch_size
        assert loaded.num_columns == sealed.num_columns
        assert loaded.known_items == sealed.known_items
        assert [s.to_bytes() for s in loaded.segments] == [
            s.to_bytes() for s in sealed.segments
        ]

    def test_missing_manifest_is_a_partial_snapshot(self, tmp_path):
        manager = CheckpointManager(tmp_path / "chk")
        sealed = manager.seal(warm_miner())
        (sealed.path / MANIFEST_NAME).unlink()
        with pytest.raises(CheckpointError, match="partial snapshot"):
            manager.load(sealed.path)

    def test_digest_mismatch_is_detected(self, tmp_path):
        manager = CheckpointManager(tmp_path / "chk")
        sealed = manager.seal(warm_miner())
        segment_file = next((sealed.path / "segments").iterdir())
        segment_file.write_bytes(segment_file.read_bytes() + b"\x00")
        with pytest.raises(CheckpointError, match="digest"):
            manager.load(sealed.path)

    def test_missing_file_is_detected(self, tmp_path):
        manager = CheckpointManager(tmp_path / "chk")
        sealed = manager.seal(warm_miner())
        (sealed.path / REGISTRY_NAME).unlink()
        with pytest.raises(CheckpointError, match="missing"):
            manager.load(sealed.path)

    def test_unsupported_format_is_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path / "chk")
        sealed = manager.seal(warm_miner())
        manifest = json.loads((sealed.path / MANIFEST_NAME).read_text())
        manifest["format"] = "repro-checkpoint/999"
        (sealed.path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="format"):
            manager.load(sealed.path)


class TestLatestAndPrune:
    def seal_slides(self, tmp_path, keep=3):
        journal = MemoryJournal()
        miner = make_miner(on_slide=journal.append)
        manager = CheckpointManager(tmp_path / "chk", keep=keep)
        checkpointer = Checkpointer(manager, miner, journal=journal, every=2)
        miner.add_slide_sink(checkpointer)
        miner.watch(
            TransactionStream(make_transactions(count=100), batch_size=BATCH_SIZE),
            MINSUP,
            connected_only=False,
        )
        return manager, checkpointer

    def test_prune_keeps_only_the_newest(self, tmp_path):
        manager, checkpointer = self.seal_slides(tmp_path, keep=2)
        # 10 slides at every=2 seals 5 snapshots (slides 1,3,5,7,9) but
        # only the newest `keep` survive pruning.
        assert checkpointer.snapshots_sealed == 5
        assert [p.name for p in manager.snapshot_paths()] == [
            "chk-00000007",
            "chk-00000009",
        ]

    def test_latest_skips_invalid_snapshots(self, tmp_path):
        manager, _ = self.seal_slides(tmp_path, keep=3)
        newest = manager.snapshot_paths()[-1]
        (newest / MANIFEST_NAME).unlink()
        latest = manager.latest()
        assert latest is not None
        assert latest.slide_id == 7  # the newest snapshot that validates

    def test_latest_on_empty_root_is_none(self, tmp_path):
        assert CheckpointManager(tmp_path / "chk").latest() is None

    def test_hidden_temp_directories_are_never_scanned(self, tmp_path):
        manager, _ = self.seal_slides(tmp_path, keep=3)
        leftover = manager.root / ".chk-00000099.tmp-1234"
        leftover.mkdir()
        assert leftover not in manager.snapshot_paths()
        assert manager.latest().slide_id == 9


class TestCheckpointer:
    def test_cadence_counts_slides_not_slide_ids(self, tmp_path):
        miner = make_miner()
        manager = CheckpointManager(tmp_path / "chk", keep=10)
        checkpointer = Checkpointer(manager, miner, every=3)
        miner.add_slide_sink(checkpointer)
        miner.watch(
            TransactionStream(make_transactions(count=100), batch_size=BATCH_SIZE),
            MINSUP,
            connected_only=False,
        )
        # 10 slides at every=3: sealed after the 3rd, 6th and 9th slide.
        assert checkpointer.snapshots_sealed == 3
        assert [p.name for p in manager.snapshot_paths()] == [
            "chk-00000002",
            "chk-00000005",
            "chk-00000008",
        ]
        assert checkpointer.last_checkpoint.slide_id == 8

    def test_every_must_be_positive(self, tmp_path):
        manager = CheckpointManager(tmp_path / "chk")
        with pytest.raises(CheckpointError):
            Checkpointer(manager, make_miner(), every=0)
