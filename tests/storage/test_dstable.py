"""Unit tests for repro.storage.dstable.DSTable."""

import pytest

from repro.exceptions import DSTableError
from repro.storage.dstable import DSTable
from repro.stream.batch import Batch


class TestConstruction:
    def test_invalid_window_size(self):
        with pytest.raises(DSTableError):
            DSTable(window_size=0)

    def test_transactions_round_trip_single_batch(self):
        table = DSTable(window_size=2)
        table.append_batch(Batch([["a", "c"], ["b"], []]))
        assert list(table.transactions()) == [("a", "c"), ("b",), ()]

    def test_items_canonical_order(self):
        table = DSTable(window_size=1)
        table.append_batch(Batch([["c", "a"], ["b"]]))
        assert table.items() == ["a", "b", "c"]

    def test_pointer_count_equals_total_item_occurrences(self, paper_batches):
        table = DSTable(window_size=3)
        for batch in paper_batches:
            table.append_batch(batch)
        expected = sum(len(t) for b in paper_batches for t in b)
        assert table.pointer_count() == expected


class TestPaperExample:
    def test_window_content_after_slide(self, paper_batches):
        table = DSTable(window_size=2)
        for batch in paper_batches:
            table.append_batch(batch)
        assert table.num_transactions == 6
        assert list(table.transactions()) == [
            ("a", "c", "d", "f"),
            ("a", "d", "e", "f"),
            ("a", "b", "c"),
            ("a", "c", "f"),
            ("a", "c", "d", "f"),
            ("b", "c", "d"),
        ]

    def test_item_frequencies_match_dsmatrix(self, paper_batches, paper_window_matrix):
        table = DSTable(window_size=2)
        for batch in paper_batches:
            table.append_batch(batch)
        assert table.item_frequencies() == paper_window_matrix.item_frequencies()

    def test_row_boundaries_have_one_value_per_batch(self, paper_batches):
        table = DSTable(window_size=2)
        for batch in paper_batches[:2]:
            table.append_batch(batch)
        for item in table.items():
            assert len(table.row_boundaries(item)) == 2

    def test_projected_transactions_match_dsmatrix(
        self, paper_batches, paper_window_matrix
    ):
        table = DSTable(window_size=2)
        for batch in paper_batches:
            table.append_batch(batch)
        assert (
            table.projected_transactions("a")
            == paper_window_matrix.projected_transactions("a")
        )


class TestSliding:
    def test_slide_removes_items_that_disappear(self):
        table = DSTable(window_size=1)
        table.append_batch(Batch([["x", "y"]]))
        table.append_batch(Batch([["z"]]))
        assert list(table.transactions()) == [("z",)]
        assert table.item_frequencies() == {"z": 1}

    def test_multiple_slides_keep_chains_consistent(self):
        table = DSTable(window_size=2)
        for index in range(6):
            table.append_batch(Batch([[f"i{index}", f"j{index % 2}"], [f"j{index % 2}"]]))
        transactions = list(table.transactions())
        assert len(transactions) == 4
        assert all(len(t) in (1, 2) for t in transactions)

    def test_unknown_item_boundaries(self):
        table = DSTable(window_size=1)
        with pytest.raises(DSTableError):
            table.row_boundaries("missing")


class TestPersistence:
    def test_save_and_load_round_trip(self, paper_batches, tmp_path):
        table = DSTable(window_size=2)
        for batch in paper_batches:
            table.append_batch(batch)
        target = tmp_path / "window.dst"
        table.save(target)
        restored = DSTable.load(target)
        assert list(restored.transactions()) == list(table.transactions())
        assert restored.window_size == 2

    def test_automatic_flush_with_path(self, paper_batches, tmp_path):
        target = tmp_path / "auto.dst"
        table = DSTable(window_size=2, path=target)
        table.append_batch(paper_batches[0])
        assert target.exists()

    def test_save_without_path_raises(self):
        with pytest.raises(DSTableError):
            DSTable(window_size=1).save()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(DSTableError):
            DSTable.load(tmp_path / "absent.dst")

    def test_load_corrupt_file(self, tmp_path):
        broken = tmp_path / "broken.dst"
        broken.write_text("{not json", encoding="utf-8")
        with pytest.raises(DSTableError):
            DSTable.load(broken)


class TestHelpers:
    def test_from_batches(self, paper_batches):
        table = DSTable.from_batches(paper_batches, window_size=2)
        assert table.num_transactions == 6
        assert table.num_batches == 2

    def test_repr(self, paper_batches):
        table = DSTable.from_batches(paper_batches[:1])
        assert "transactions=3" in repr(table)
