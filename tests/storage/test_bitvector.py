"""Unit tests for repro.storage.bitvector.BitVector."""

import pytest

from repro.exceptions import StorageError
from repro.storage.bitvector import BitVector


class TestConstruction:
    def test_zeros_and_ones(self):
        assert BitVector.zeros(5).count() == 0
        assert BitVector.ones(5).count() == 5
        assert BitVector.ones(0).count() == 0

    def test_from_positions(self):
        vector = BitVector.from_positions(6, [0, 2, 5])
        assert vector.positions() == [0, 2, 5]
        assert vector.count() == 3

    def test_from_positions_out_of_range(self):
        with pytest.raises(StorageError):
            BitVector.from_positions(3, [3])
        with pytest.raises(StorageError):
            BitVector.from_positions(3, [-1])

    def test_from_bools(self):
        vector = BitVector.from_bools([True, False, True])
        assert vector.length == 3
        assert vector.positions() == [0, 2]

    def test_bits_must_fit_length(self):
        with pytest.raises(StorageError):
            BitVector(2, 0b100)

    def test_negative_length_rejected(self):
        with pytest.raises(StorageError):
            BitVector(-1)

    def test_bitstring_round_trip(self):
        vector = BitVector.from_bitstring("101110")
        assert vector.to_bitstring() == "101110"
        assert vector.count() == 4

    def test_bitstring_with_separators(self):
        # The paper writes rows as "1 1 1; 1 1 0".
        vector = BitVector.from_bitstring("1 1 1; 1 1 0")
        assert vector.length == 6
        assert vector.count() == 5

    def test_invalid_bitstring(self):
        with pytest.raises(StorageError):
            BitVector.from_bitstring("10a")


class TestAccessors:
    def test_get_and_bounds(self):
        vector = BitVector.from_positions(4, [1])
        assert vector.get(1)
        assert not vector.get(0)
        with pytest.raises(StorageError):
            vector.get(4)

    def test_is_empty(self):
        assert BitVector.zeros(3).is_empty()
        assert not BitVector.from_positions(3, [0]).is_empty()

    def test_iter_and_len(self):
        vector = BitVector.from_bools([True, False])
        assert list(vector) == [True, False]
        assert len(vector) == 2

    def test_equality_and_hash(self):
        a = BitVector.from_positions(4, [1, 3])
        b = BitVector.from_positions(4, [1, 3])
        assert a == b
        assert hash(a) == hash(b)
        assert a != BitVector.from_positions(5, [1, 3])


class TestOperations:
    def test_intersect_matches_paper_example(self):
        # Example 5: row a = 111110, row c = 101111 -> intersection 101110 (count 4).
        row_a = BitVector.from_bitstring("111110")
        row_c = BitVector.from_bitstring("101111")
        intersection = row_a & row_c
        assert intersection.to_bitstring() == "101110"
        assert intersection.count() == 4

    def test_union_and_difference(self):
        a = BitVector.from_positions(4, [0, 1])
        b = BitVector.from_positions(4, [1, 2])
        assert (a | b).positions() == [0, 1, 2]
        assert a.difference(b).positions() == [0]

    def test_intersection_count_shortcut(self):
        a = BitVector.from_positions(6, [0, 2, 4])
        b = BitVector.from_positions(6, [2, 4, 5])
        assert a.intersection_count(b) == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(StorageError):
            BitVector.zeros(3).intersect(BitVector.zeros(4))

    def test_non_bitvector_operand_rejected(self):
        with pytest.raises(StorageError):
            BitVector.zeros(3).intersect("110")  # type: ignore[arg-type]

    def test_with_bit(self):
        vector = BitVector.zeros(4).with_bit(2)
        assert vector.positions() == [2]
        cleared = vector.with_bit(2, False)
        assert cleared.is_empty()

    def test_extended(self):
        vector = BitVector.from_positions(3, [2]).extended(2)
        assert vector.length == 5
        assert vector.positions() == [2]
        with pytest.raises(StorageError):
            vector.extended(-1)

    def test_dropped_prefix_shifts_positions(self):
        vector = BitVector.from_positions(6, [0, 3, 5]).dropped_prefix(3)
        assert vector.length == 3
        assert vector.positions() == [0, 2]

    def test_dropped_prefix_bounds(self):
        with pytest.raises(StorageError):
            BitVector.zeros(3).dropped_prefix(4)
        with pytest.raises(StorageError):
            BitVector.zeros(3).dropped_prefix(-1)

    def test_sliced(self):
        vector = BitVector.from_bitstring("110101")
        assert vector.sliced(2, 5).to_bitstring() == "010"
        with pytest.raises(StorageError):
            vector.sliced(4, 2)


class TestSerialisation:
    def test_bytes_round_trip(self):
        vector = BitVector.from_positions(19, [0, 7, 18])
        restored = BitVector.from_bytes(vector.to_bytes(), 19)
        assert restored == vector

    def test_bytes_mask_extra_bits(self):
        restored = BitVector.from_bytes(b"\xff", 4)
        assert restored.count() == 4

    def test_repr_small_and_large(self):
        assert "10" in repr(BitVector.from_bitstring("10"))
        big = BitVector.ones(64)
        assert "64 set" in repr(big)
