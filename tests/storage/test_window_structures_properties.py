"""Property-based tests: the three window structures agree with each other.

For any random stream of batches, after feeding everything through a sliding
window of size ``w``:

* DSMatrix, DSTable and DSTree must all represent exactly the transactions of
  the last ``w`` batches (as multisets);
* their per-item frequencies must agree;
* DSMatrix persistence must round-trip.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.storage.dsmatrix import DSMatrix
from repro.storage.dstable import DSTable
from repro.storage.dstree import DSTree
from repro.stream.batch import Batch

ITEMS = ["a", "b", "c", "d", "e"]

transactions_strategy = st.lists(
    st.sets(st.sampled_from(ITEMS), min_size=0, max_size=5).map(sorted).map(tuple),
    min_size=0,
    max_size=6,
)
batches_strategy = st.lists(
    transactions_strategy.map(Batch), min_size=1, max_size=6
)
window_sizes = st.integers(min_value=1, max_value=4)


def expected_window_transactions(batches, window_size):
    recent = batches[-window_size:]
    expected = Counter()
    for batch in recent:
        expected.update(batch.transactions)
    return expected


@settings(max_examples=60, deadline=None)
@given(batches_strategy, window_sizes)
def test_dsmatrix_holds_last_w_batches(batches, window_size):
    matrix = DSMatrix(window_size=window_size)
    for batch in batches:
        matrix.append_batch(batch)
    assert Counter(matrix.transactions()) == expected_window_transactions(
        batches, window_size
    )


@settings(max_examples=60, deadline=None)
@given(batches_strategy, window_sizes)
def test_dstable_holds_last_w_batches(batches, window_size):
    table = DSTable(window_size=window_size)
    for batch in batches:
        table.append_batch(batch)
    assert Counter(table.transactions()) == expected_window_transactions(
        batches, window_size
    )


@settings(max_examples=60, deadline=None)
@given(batches_strategy, window_sizes)
def test_dstree_holds_last_w_batches(batches, window_size):
    tree = DSTree(window_size=window_size)
    for batch in batches:
        tree.append_batch(batch)
    reconstructed = Counter()
    for itemset, count in tree.weighted_transactions():
        reconstructed[itemset] += count
    expected = expected_window_transactions(batches, window_size)
    # The DSTree cannot represent empty transactions (they add no nodes).
    expected.pop((), None)
    assert reconstructed == expected
    assert tree.check_count_invariant()


@settings(max_examples=40, deadline=None)
@given(batches_strategy, window_sizes)
def test_structures_agree_on_item_frequencies(batches, window_size):
    matrix = DSMatrix(window_size=window_size)
    table = DSTable(window_size=window_size)
    tree = DSTree(window_size=window_size)
    for batch in batches:
        matrix.append_batch(batch)
        table.append_batch(batch)
        tree.append_batch(batch)
    matrix_counts = {k: v for k, v in matrix.item_frequencies().items() if v}
    table_counts = {k: v for k, v in table.item_frequencies().items() if v}
    tree_counts = {k: v for k, v in tree.item_frequencies().items() if v}
    assert matrix_counts == table_counts == tree_counts


@settings(max_examples=30, deadline=None)
@given(batches_strategy, window_sizes)
def test_dsmatrix_persistence_round_trip(tmp_path_factory, batches, window_size):
    matrix = DSMatrix(window_size=window_size)
    for batch in batches:
        matrix.append_batch(batch)
    target = tmp_path_factory.mktemp("dsm") / "window.dsm"
    matrix.save(target)
    restored = DSMatrix.load(target)
    assert list(restored.transactions()) == list(matrix.transactions())
    assert restored.boundaries() == matrix.boundaries()
