"""Unit tests for repro.storage.dsmatrix.DSMatrix."""

import pytest

from repro.exceptions import DSMatrixError
from repro.storage.dsmatrix import DSMatrix
from repro.stream.batch import Batch

# Expected row contents of the paper's Example 1 (position 0 = first column).
PAPER_ROWS_AFTER_T6 = {
    "a": "011111",
    "b": "000001",
    "c": "101101",
    "d": "100110",
    "e": "010010",
    "f": "111110",
}
PAPER_ROWS_AFTER_T9 = {
    "a": "111110",
    "b": "001001",
    "c": "101111",
    "d": "110011",
    "e": "010000",
    "f": "110110",
}


class TestPaperExample:
    def test_rows_after_first_two_batches(self, paper_batches):
        matrix = DSMatrix(window_size=2)
        matrix.append_batch(paper_batches[0])
        matrix.append_batch(paper_batches[1])
        assert matrix.boundaries() == [3, 6]
        for item, bits in PAPER_ROWS_AFTER_T6.items():
            assert matrix.row(item).to_bitstring() == bits, item

    def test_rows_after_window_slides_to_b2_b3(self, paper_window_matrix):
        matrix = paper_window_matrix
        assert matrix.boundaries() == [3, 6]
        for item, bits in PAPER_ROWS_AFTER_T9.items():
            assert matrix.row(item).to_bitstring() == bits, item

    def test_item_frequencies_after_slide(self, paper_window_matrix):
        frequencies = paper_window_matrix.item_frequencies()
        assert frequencies == {"a": 5, "b": 2, "c": 5, "d": 4, "e": 1, "f": 4}

    def test_frequent_items(self, paper_window_matrix):
        assert paper_window_matrix.frequent_items(2) == ["a", "b", "c", "d", "f"]
        assert paper_window_matrix.frequent_items(5) == ["a", "c"]

    def test_transaction_reconstruction(self, paper_window_matrix):
        assert paper_window_matrix.transaction(0) == ("a", "c", "d", "f")
        assert paper_window_matrix.transaction(5) == ("b", "c", "d")

    def test_projected_transactions_for_a(self, paper_window_matrix):
        # Example 2: the {a}-projected database extracted downwards.
        projected = paper_window_matrix.projected_transactions("a")
        assert projected == [
            ("c", "d", "f"),
            ("d", "e", "f"),
            ("b", "c"),
            ("c", "f"),
            ("c", "d", "f"),
        ]

    def test_projected_transactions_for_b(self, paper_window_matrix):
        projected = paper_window_matrix.projected_transactions("b")
        assert projected == [("c",), ("c", "d")]


class TestWindowMaintenance:
    def test_append_returns_evicted_column_count(self):
        matrix = DSMatrix(window_size=2)
        assert matrix.append_batch(Batch([["a"], ["b"]])) == 0
        assert matrix.append_batch(Batch([["a"]])) == 0
        assert matrix.append_batch(Batch([["c"], ["c"]])) == 2
        assert matrix.num_columns == 3

    def test_window_never_exceeds_size(self):
        matrix = DSMatrix(window_size=3)
        for index in range(10):
            matrix.append_batch(Batch([[f"i{index}"]]))
        assert matrix.num_batches == 3
        assert matrix.num_columns == 3

    def test_slide_preserves_recent_content(self):
        matrix = DSMatrix(window_size=2)
        matrix.append_batch(Batch([["x", "y"]]))
        matrix.append_batch(Batch([["y"]]))
        matrix.append_batch(Batch([["z"]]))
        assert list(matrix.transactions()) == [("y",), ("z",)]
        assert matrix.item_frequency("x") == 0

    def test_invalid_window_size(self):
        with pytest.raises(DSMatrixError):
            DSMatrix(window_size=0)

    def test_fixed_universe_rejects_unknown_items(self):
        matrix = DSMatrix(window_size=2, items=["a", "b"])
        with pytest.raises(DSMatrixError):
            matrix.append_batch(Batch([["z"]]))

    def test_fixed_universe_keeps_all_rows(self):
        matrix = DSMatrix(window_size=2, items=["a", "b", "c"])
        matrix.append_batch(Batch([["a"]]))
        assert matrix.items() == ["a", "b", "c"]
        assert matrix.item_frequency("c") == 0


class TestAccessErrors:
    def test_unknown_item_row(self, paper_window_matrix):
        with pytest.raises(DSMatrixError):
            paper_window_matrix.row("zz")

    def test_unknown_item_projection(self, paper_window_matrix):
        with pytest.raises(DSMatrixError):
            paper_window_matrix.projected_transactions("zz")

    def test_column_out_of_range(self, paper_window_matrix):
        with pytest.raises(DSMatrixError):
            paper_window_matrix.transaction(99)


class TestPersistence:
    def test_save_and_load_round_trip(self, paper_window_matrix, tmp_path):
        target = tmp_path / "window.dsm"
        paper_window_matrix.save(target)
        restored = DSMatrix.load(target)
        assert restored.items() == paper_window_matrix.items()
        assert restored.boundaries() == paper_window_matrix.boundaries()
        for item in restored.items():
            assert restored.row(item) == paper_window_matrix.row(item)

    def test_row_from_disk(self, paper_window_matrix, tmp_path):
        target = tmp_path / "window.dsm"
        paper_window_matrix.save(target)
        row = DSMatrix.row_from_disk(target, "a")
        assert row == paper_window_matrix.row("a")

    def test_row_from_disk_unknown_item(self, paper_window_matrix, tmp_path):
        target = tmp_path / "window.dsm"
        paper_window_matrix.save(target)
        with pytest.raises(DSMatrixError):
            DSMatrix.row_from_disk(target, "zz")

    def test_automatic_flush_when_path_configured(self, paper_batches, tmp_path):
        target = tmp_path / "auto.dsm"
        matrix = DSMatrix(window_size=2, path=target)
        matrix.append_batch(paper_batches[0])
        assert target.exists()
        assert matrix.disk_size_bytes() > 0
        restored = DSMatrix.load(target)
        assert restored.num_columns == 3

    def test_save_without_path_raises(self, paper_window_matrix):
        with pytest.raises(DSMatrixError):
            paper_window_matrix.save()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(DSMatrixError):
            DSMatrix.load(tmp_path / "absent.dsm")

    def test_load_rejects_bad_magic(self, tmp_path):
        bogus = tmp_path / "bogus.dsm"
        bogus.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(DSMatrixError):
            DSMatrix.load(bogus)


class TestAccounting:
    def test_memory_bits_formula(self, paper_window_matrix):
        # m * |T| bits: 6 items * 6 transactions.
        assert paper_window_matrix.memory_bits() == 36

    def test_from_batches_defaults_to_holding_everything(self, paper_batches):
        matrix = DSMatrix.from_batches(paper_batches)
        assert matrix.num_columns == 9
        assert matrix.num_batches == 3

    def test_repr(self, paper_window_matrix):
        assert "columns=6" in repr(paper_window_matrix)
