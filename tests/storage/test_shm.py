"""Tests of the shared-memory segment transport (DESIGN.md §11)."""

import glob

import pytest

from repro.exceptions import SharedMemoryError, StorageError
from repro.storage.bitvector import popcount_bytes
from repro.storage.segments import (
    Segment,
    SegmentHandle,
    segment_counts_from_bytes,
)
from repro.storage.shm import (
    SharedSegmentArena,
    publish_block,
    publish_segments,
    read_shared_block,
    shared_memory_available,
    unlink_block,
)


def _no_shm_leaks():
    return glob.glob("/dev/shm/psm_*") == []


def _segment(segment_id=0, num_columns=5):
    rows = {"a": 0b10110, "b": 0b00111, "c": 0b01000}
    return Segment(segment_id, num_columns, rows)


class TestPopcountBytes:
    def test_empty(self):
        assert popcount_bytes(b"") == 0

    def test_matches_per_byte_counts(self):
        data = bytes(range(256)) * 17
        assert popcount_bytes(data) == sum(b.bit_count() for b in data)

    def test_crosses_stride_boundaries(self):
        data = b"\xff" * (1 << 17)  # two full strides
        assert popcount_bytes(data) == 8 * len(data)

    def test_accepts_memoryview(self):
        assert popcount_bytes(memoryview(b"\x0f\xf0")) == 8


class TestSegmentCountsFromBytes:
    def test_matches_segment_counts(self):
        segment = _segment()
        counts = segment_counts_from_bytes(segment.to_bytes())
        expected = {
            item: bin(segment.row_bits(item)).count("1")
            for item in segment.items()
            if segment.row_bits(item)
        }
        assert counts == expected

    def test_rejects_bad_magic(self):
        with pytest.raises(StorageError):
            segment_counts_from_bytes(b"XXXX" + b"\x00" * 16)


class TestPublishBlock:
    def test_roundtrip_and_unlink(self):
        if not shared_memory_available():
            pytest.skip("no shared memory on this host")
        payloads = [b"alpha", b"", b"gamma-gamma"]
        name, spans = publish_block(payloads)
        try:
            assert [read_shared_block(name, o, s) for o, s in spans] == payloads
        finally:
            unlink_block(name)
        assert _no_shm_leaks()

    def test_unlink_is_idempotent(self):
        if not shared_memory_available():
            pytest.skip("no shared memory on this host")
        name, _spans = publish_block([b"x"])
        unlink_block(name)
        unlink_block(name)  # second call is a no-op
        assert _no_shm_leaks()

    def test_attach_after_unlink_raises(self):
        if not shared_memory_available():
            pytest.skip("no shared memory on this host")
        name, spans = publish_block([b"payload"])
        unlink_block(name)
        with pytest.raises(SharedMemoryError):
            read_shared_block(name, *spans[0])


class TestSharedSegmentArena:
    def test_handles_roundtrip(self):
        if not shared_memory_available():
            pytest.skip("no shared memory on this host")
        segments = [_segment(i) for i in range(3)]
        handles = tuple(SegmentHandle.from_segment(s) for s in segments)
        with SharedSegmentArena(handles) as arena:
            assert len(arena.handles) == len(handles)
            for handle, segment in zip(arena.handles, segments):
                assert handle.shm_name == arena.name
                loaded = handle.load()
                assert loaded.to_bytes() == segment.to_bytes()
                assert handle.load_counts() == segment_counts_from_bytes(
                    segment.to_bytes()
                )
        assert arena.closed
        assert _no_shm_leaks()

    def test_close_is_idempotent(self):
        if not shared_memory_available():
            pytest.skip("no shared memory on this host")
        handles = (SegmentHandle.from_segment(_segment()),)
        arena = SharedSegmentArena(handles)
        arena.close()
        arena.close()
        assert _no_shm_leaks()

    def test_publish_segments_passthrough_without_payloads(self, tmp_path):
        segment = _segment()
        path = segment.write(tmp_path / "seg.bin")
        handles = (SegmentHandle.from_path(segment, path),)
        arena, out = publish_segments(handles)
        assert arena is None
        assert out == handles


class TestSegmentHandleShapes:
    def test_exactly_one_shape_required(self):
        with pytest.raises(StorageError):
            SegmentHandle(segment_id=0, num_columns=5)
        with pytest.raises(StorageError):
            SegmentHandle(
                segment_id=0,
                num_columns=5,
                payload=b"x",
                shm_name="psm_x",
                shm_size=1,
            )

    def test_load_counts_from_payload(self):
        segment = _segment()
        handle = SegmentHandle.from_segment(segment)
        assert handle.load_counts() == segment_counts_from_bytes(
            segment.to_bytes()
        )

    def test_load_counts_from_path(self, tmp_path):
        segment = _segment()
        path = segment.write(tmp_path / "seg.bin")
        handle = SegmentHandle.from_path(segment, path)
        assert handle.load_counts() == segment_counts_from_bytes(
            segment.to_bytes()
        )
