"""Tests for the window storage backends (repro.storage.backend).

Covers the contract of DESIGN.md §3: incremental support counters, O(1)
window slides, segment-level persistence (per-batch I/O, no full-matrix
rewrites), cross-format save/load round trips and the edge cases around
empty batches and slid windows.
"""

import pytest

from repro.exceptions import DSMatrixError
from repro.storage.backend import (
    DiskWindowStore,
    MemoryWindowStore,
    create_store,
    load_store,
)
from repro.storage.dsmatrix import DSMatrix
from repro.stream.batch import Batch


def batches_for(count, items_per_batch=3, start=0):
    """Synthetic batches with overlapping item sets."""
    result = []
    for index in range(start, start + count):
        transactions = [
            [f"i{(index + offset) % 7}", f"i{(index + offset + 1) % 7}"]
            for offset in range(items_per_batch)
        ]
        result.append(Batch(transactions, batch_id=index))
    return result


@pytest.fixture(params=["memory", "disk", "single"])
def any_store(request, tmp_path):
    """One store per backend kind, window size 3."""
    if request.param == "memory":
        return create_store("memory", window_size=3)
    if request.param == "disk":
        return create_store("disk", window_size=3, path=tmp_path / "segments")
    return create_store("single", window_size=3, path=tmp_path / "window.dsm")


class TestSharedSemantics:
    def test_incremental_counters_match_recounted_rows(self, any_store):
        for batch in batches_for(8):
            any_store.append_batch(batch)
        for item in any_store.items():
            assert any_store.item_frequency(item) == any_store.row(item).count()

    def test_slide_is_a_segment_pop(self, any_store):
        for batch in batches_for(5):
            any_store.append_batch(batch)
        assert any_store.num_batches == 3
        assert [s.segment_id for s in any_store.segments()] == [2, 3, 4]

    def test_row_cache_invalidated_on_append(self, any_store):
        any_store.append_batch(Batch([["a", "b"], ["a"]]))
        before = any_store.row("a")
        assert before.count() == 2
        any_store.append_batch(Batch([["a"]]))
        after = any_store.row("a")
        assert after.length == 3
        assert after.count() == 3

    def test_evicted_item_keeps_zero_row(self, any_store):
        any_store.append_batch(Batch([["x", "y"]]))
        for batch in batches_for(3):
            any_store.append_batch(batch)
        assert any_store.item_frequency("x") == 0
        assert any_store.row("x").is_empty()

    def test_unknown_item_raises(self, any_store):
        any_store.append_batch(Batch([["a"]]))
        with pytest.raises(DSMatrixError):
            any_store.row("zz")
        with pytest.raises(DSMatrixError):
            any_store.item_frequency("zz")

    def test_empty_batch_appends_and_evicts(self, any_store):
        any_store.append_batch(Batch([]))
        any_store.append_batch(Batch([["a"], ["b"]]))
        assert any_store.num_columns == 2
        assert any_store.boundaries() == [0, 2]
        assert list(any_store.transactions()) == [("a",), ("b",)]
        # Slide the empty batch out again.
        evicted = [any_store.append_batch(b) for b in batches_for(2)]
        assert evicted == [0, 0]  # first append fills, second evicts 0 columns
        assert any_store.num_batches == 3

    def test_fixed_universe_rejected_before_mutation(self, tmp_path):
        store = MemoryWindowStore(2, items=["a", "b"])
        store.append_batch(Batch([["a"]]))
        with pytest.raises(DSMatrixError):
            store.append_batch(Batch([["a", "z"]]))
        # The failed append must not have half-applied.
        assert store.num_batches == 1
        assert store.item_frequency("a") == 1


class TestSegmentedPersistence:
    def test_slide_past_capacity_keeps_window_size_files(self, tmp_path):
        directory = tmp_path / "segments"
        store = create_store("disk", window_size=8, path=directory)
        for batch in batches_for(50):
            store.append_batch(batch)
        segment_files = sorted(directory.glob("seg-*.dsg"))
        assert len(segment_files) == 8
        assert store.io_stats.segment_files_deleted == 42

    def test_no_full_rewrites_and_per_batch_io(self, tmp_path):
        """Acceptance: 50 batches through a window of 8 with persistence on
        performs no full-matrix rewrites; steady-state appends persist
        O(batch) bytes (segment + manifest), not the whole window."""
        store = create_store("disk", window_size=8, path=tmp_path / "segments")
        per_append = []
        for batch in batches_for(50, items_per_batch=20):
            store.append_batch(batch)
            per_append.append(store.io_stats.bytes_last_append)
        assert store.io_stats.full_rewrites == 0
        # Steady state (window full): every append writes about the same
        # number of bytes, and far less than the persisted window.
        steady = per_append[10:]
        assert max(steady) < store.disk_size_bytes()
        assert max(steady) <= min(steady) * 2

    def test_old_segment_files_untouched_by_later_appends(self, tmp_path):
        directory = tmp_path / "segments"
        store = create_store("disk", window_size=4, path=directory)
        for batch in batches_for(3):
            store.append_batch(batch)
        snapshot = {
            path.name: path.read_bytes() for path in directory.glob("seg-*.dsg")
        }
        store.append_batch(batches_for(1, start=3)[0])
        for name, content in snapshot.items():
            assert (directory / name).read_bytes() == content

    def test_reopen_round_trip(self, tmp_path):
        directory = tmp_path / "segments"
        store = create_store("disk", window_size=3, path=directory)
        for batch in batches_for(5):
            store.append_batch(batch)
        reopened = DiskWindowStore.open(directory)
        assert reopened.window_size == 3
        assert reopened.boundaries() == store.boundaries()
        assert reopened.items() == store.items()
        for item in store.items():
            assert reopened.row(item) == store.row(item)
        # Appends continue with fresh segment ids after the resume.
        reopened.append_batch(batches_for(1, start=5)[0])
        assert reopened.segments()[-1].segment_id == 5

    def test_reopen_with_mismatched_window_size(self, tmp_path):
        directory = tmp_path / "segments"
        store = create_store("disk", window_size=3, path=directory)
        store.append_batch(Batch([["a"]]))
        with pytest.raises(DSMatrixError):
            DiskWindowStore(window_size=5, path=directory)

    def test_row_persisted_reads_segment_files(self, tmp_path):
        store = create_store("disk", window_size=2, path=tmp_path / "segments")
        store.append_batch(Batch([["a", "b"], ["a"]]))
        store.append_batch(Batch([["b"]]))
        store.append_batch(Batch([["a"], ["c"]]))  # slides the window
        for item in ("a", "b", "c"):
            assert store.row_persisted(item) == store.row(item)

    def test_row_persisted_falls_back_when_segment_file_vanishes(self, tmp_path):
        directory = tmp_path / "segments"
        store = create_store("disk", window_size=2, path=directory)
        store.append_batch(Batch([["a"]]))
        next(directory.glob("seg-*.dsg")).unlink()
        assert store.row_persisted("a") is None  # caller falls back to row()
        assert store.row("a").count() == 1

    def test_append_keeps_manifest_consistent_before_deleting(self, tmp_path):
        """Crash-safety ordering: at no point does the manifest reference a
        deleted segment file, so the store is reopenable after every append."""
        import json

        directory = tmp_path / "segments"
        store = create_store("disk", window_size=2, path=directory)
        for batch in batches_for(5):
            store.append_batch(batch)
            manifest = json.loads((directory / "manifest.json").read_text())
            for entry in manifest["segments"]:
                assert (directory / entry["file"]).exists()
            reopened = DiskWindowStore.open(directory)
            assert reopened.boundaries() == store.boundaries()

    def test_reopen_rejects_conflicting_item_universe(self, tmp_path):
        directory = tmp_path / "segments"
        store = create_store("disk", window_size=2, path=directory)
        store.append_batch(Batch([["x", "y"]]))
        with pytest.raises(DSMatrixError):
            DiskWindowStore(window_size=2, items=["a"], path=directory)


class TestCrossFormatRoundTrips:
    def test_legacy_load_of_segmented_save(self, tmp_path):
        """A matrix persisted by the segmented backend exports a legacy file
        that the single-file loader reads back identically."""
        store = create_store("disk", window_size=3, path=tmp_path / "segments")
        for batch in batches_for(5):
            store.append_batch(batch)
        exported = store.save(tmp_path / "export.dsm")
        restored = DSMatrix.load(exported)
        assert restored.items() == store.items()
        assert restored.boundaries() == store.boundaries()
        for item in store.items():
            assert restored.row(item) == store.row(item)

    def test_memory_store_save_matches_disk_store_save(self, tmp_path):
        memory = create_store("memory", window_size=3)
        disk = create_store("disk", window_size=3, path=tmp_path / "segments")
        for batch in batches_for(5):
            memory.append_batch(batch)
            disk.append_batch(batch)
        memory_file = memory.save(tmp_path / "memory.dsm")
        disk_file = disk.save(tmp_path / "disk.dsm")
        assert memory_file.read_bytes() == disk_file.read_bytes()

    def test_load_store_dispatches_on_path_kind(self, tmp_path):
        directory = tmp_path / "segments"
        store = create_store("disk", window_size=2, path=directory)
        store.append_batch(Batch([["a", "b"]]))
        from_dir = load_store(directory)
        assert isinstance(from_dir, DiskWindowStore)
        assert from_dir.layout == "segmented"
        legacy = store.save(tmp_path / "legacy.dsm")
        from_file = load_store(legacy)
        assert from_file.layout == "single"
        assert from_file.row("a") == store.row("a")

    def test_memory_store_from_legacy_file(self, tmp_path):
        original = create_store("memory", window_size=3)
        for batch in batches_for(4):
            original.append_batch(batch)
        target = original.save(tmp_path / "window.dsm")
        restored = MemoryWindowStore.from_legacy_file(target)
        assert restored.boundaries() == original.boundaries()
        assert restored.item_frequencies() == original.item_frequencies()

    def test_save_without_target_on_memory_store_raises(self):
        store = create_store("memory", window_size=2)
        with pytest.raises(DSMatrixError):
            store.save()


class TestFacadeDiskMode:
    def test_dsmatrix_disk_storage_round_trip(self, tmp_path):
        directory = tmp_path / "segments"
        matrix = DSMatrix(window_size=2, path=directory, storage="disk")
        matrix.append_batch(Batch([["a", "b"], ["b"]]))
        matrix.append_batch(Batch([["a"]]))
        matrix.append_batch(Batch([["c"]]))  # slides
        restored = DSMatrix.load(directory)
        assert restored.boundaries() == matrix.boundaries()
        for item in matrix.items():
            assert restored.row(item) == matrix.row(item)

    def test_row_from_disk_on_segment_directory_after_slide(self, tmp_path):
        directory = tmp_path / "segments"
        matrix = DSMatrix(window_size=2, path=directory, storage="disk")
        for batch in batches_for(5):
            matrix.append_batch(batch)
        for item in matrix.items():
            assert DSMatrix.row_from_disk(directory, item) == matrix.row(item)

    def test_row_from_disk_after_slide_legacy(self, tmp_path):
        target = tmp_path / "window.dsm"
        matrix = DSMatrix(window_size=2, path=target)
        for batch in batches_for(5):
            matrix.append_batch(batch)
        for item in matrix.items():
            assert DSMatrix.row_from_disk(target, item) == matrix.row(item)

    def test_row_from_disk_unknown_item_on_directory(self, tmp_path):
        directory = tmp_path / "segments"
        matrix = DSMatrix(window_size=2, path=directory, storage="disk")
        matrix.append_batch(Batch([["a"]]))
        with pytest.raises(DSMatrixError):
            DSMatrix.row_from_disk(directory, "zz")

    def test_storage_requires_path(self):
        with pytest.raises(DSMatrixError):
            DSMatrix(window_size=2, storage="disk")

    def test_unknown_storage_kind(self):
        with pytest.raises(DSMatrixError):
            DSMatrix(window_size=2, storage="quantum", path="x")

    def test_store_instance_passthrough(self):
        store = MemoryWindowStore(4)
        matrix = DSMatrix(storage=store)
        assert matrix.store is store
        assert matrix.window_size == 4
        with pytest.raises(DSMatrixError):
            DSMatrix(window_size=3, storage=store)

    def test_store_instance_rejects_conflicting_arguments(self, tmp_path):
        with pytest.raises(DSMatrixError):
            DSMatrix(storage=MemoryWindowStore(2), items=["a"])
        with pytest.raises(DSMatrixError):
            DSMatrix(storage=MemoryWindowStore(2), path=tmp_path / "x")

    def test_segmented_layout_rejects_file_path(self, tmp_path):
        target = tmp_path / "window.dsm"
        target.write_bytes(b"not a directory")
        with pytest.raises(DSMatrixError):
            DSMatrix(window_size=2, path=target, storage="disk")

    def test_row_persisted_unknown_item_is_none_on_all_backends(self, tmp_path):
        disk = DSMatrix(window_size=2, path=tmp_path / "segs", storage="disk")
        single = DSMatrix(window_size=2, path=tmp_path / "win.dsm")
        memory = DSMatrix(window_size=2)
        for matrix in (disk, single, memory):
            matrix.append_batch(Batch([["a"]]))
            assert matrix.row_persisted("zz") is None

    def test_manifest_known_items_only_lists_zero_support_items(self, tmp_path):
        import json

        directory = tmp_path / "segs"
        store = create_store("disk", window_size=1, path=directory)
        store.append_batch(Batch([["x"]]))
        store.append_batch(Batch([["y"]]))  # evicts x -> zero support
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["known_items"] == ["x"]
        reopened = DiskWindowStore.open(directory)
        assert reopened.item_frequency("x") == 0
        assert reopened.row("x").is_empty()
