"""Property-based tests for BitVector (hypothesis)."""

from hypothesis import given, strategies as st

from repro.storage.bitvector import BitVector


def bitvectors(max_length=64):
    return st.integers(min_value=0, max_value=max_length).flatmap(
        lambda n: st.builds(
            BitVector.from_positions,
            st.just(n),
            st.lists(st.integers(min_value=0, max_value=max(n - 1, 0)), max_size=n)
            if n
            else st.just([]),
        )
    )


@given(st.lists(st.booleans(), max_size=80))
def test_from_bools_round_trip(flags):
    vector = BitVector.from_bools(flags)
    assert list(vector) == list(flags)
    assert vector.count() == sum(flags)


@given(st.lists(st.booleans(), min_size=1, max_size=80))
def test_bitstring_round_trip(flags):
    vector = BitVector.from_bools(flags)
    assert BitVector.from_bitstring(vector.to_bitstring()) == vector


@given(st.lists(st.booleans(), max_size=80))
def test_bytes_round_trip(flags):
    vector = BitVector.from_bools(flags)
    assert BitVector.from_bytes(vector.to_bytes(), vector.length) == vector


@given(st.data(), st.integers(min_value=0, max_value=64))
def test_intersection_behaves_like_set_intersection(data, length):
    positions_a = data.draw(
        st.sets(st.integers(min_value=0, max_value=max(length - 1, 0)))
        if length
        else st.just(set())
    )
    positions_b = data.draw(
        st.sets(st.integers(min_value=0, max_value=max(length - 1, 0)))
        if length
        else st.just(set())
    )
    a = BitVector.from_positions(length, positions_a)
    b = BitVector.from_positions(length, positions_b)
    assert set((a & b).positions()) == positions_a & positions_b
    assert set((a | b).positions()) == positions_a | positions_b
    assert set(a.difference(b).positions()) == positions_a - positions_b
    assert a.intersection_count(b) == len(positions_a & positions_b)


@given(st.data(), st.integers(min_value=0, max_value=64))
def test_drop_prefix_matches_position_shift(data, length):
    positions = data.draw(
        st.sets(st.integers(min_value=0, max_value=max(length - 1, 0)))
        if length
        else st.just(set())
    )
    drop = data.draw(st.integers(min_value=0, max_value=length))
    vector = BitVector.from_positions(length, positions)
    dropped = vector.dropped_prefix(drop)
    expected = sorted(p - drop for p in positions if p >= drop)
    assert dropped.positions() == expected
    assert dropped.length == length - drop


@given(st.data(), st.integers(min_value=1, max_value=64))
def test_count_equals_number_of_positions(data, length):
    positions = data.draw(st.sets(st.integers(min_value=0, max_value=length - 1)))
    vector = BitVector.from_positions(length, positions)
    assert vector.count() == len(positions)
    assert vector.positions() == sorted(positions)
