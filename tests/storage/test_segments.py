"""Unit tests for repro.storage.segments."""

import pytest

from repro.exceptions import DSMatrixError
from repro.storage.segments import Segment, read_segment_row
from repro.stream.batch import Batch


@pytest.fixture
def abc_segment():
    batch = Batch([["a", "c"], ["b"], ["a", "b", "c"]])
    return Segment.from_batch(batch, segment_id=7)


class TestConstruction:
    def test_from_batch_encodes_local_bit_patterns(self, abc_segment):
        assert abc_segment.segment_id == 7
        assert abc_segment.num_columns == 3
        assert abc_segment.row_bits("a") == 0b101
        assert abc_segment.row_bits("b") == 0b110
        assert abc_segment.row_bits("c") == 0b101

    def test_absent_item_has_zero_bits(self, abc_segment):
        assert abc_segment.row_bits("zz") == 0

    def test_item_counts_precomputed(self, abc_segment):
        assert abc_segment.item_counts() == {"a": 2, "b": 2, "c": 2}

    def test_all_zero_rows_are_dropped(self):
        segment = Segment(0, 2, {"a": 0b01, "b": 0})
        assert segment.items() == ["a"]

    def test_empty_batch(self):
        segment = Segment.from_batch(Batch([]), segment_id=0)
        assert segment.num_columns == 0
        assert segment.items() == []
        assert list(segment.transactions()) == []

    def test_rejects_overflowing_bits(self):
        with pytest.raises(DSMatrixError):
            Segment(0, 2, {"a": 0b100})

    def test_rejects_negative_columns(self):
        with pytest.raises(DSMatrixError):
            Segment(0, -1, {})


class TestReconstruction:
    def test_column_items_single_pass_is_sorted(self, abc_segment):
        assert abc_segment.column_items() == [["a", "c"], ["b"], ["a", "b", "c"]]

    def test_transactions(self, abc_segment):
        assert list(abc_segment.transactions()) == [
            ("a", "c"),
            ("b",),
            ("a", "b", "c"),
        ]

    def test_memory_bits(self, abc_segment):
        assert abc_segment.memory_bits() == 3 * 3


class TestSerialisation:
    def test_bytes_round_trip(self, abc_segment):
        restored = Segment.from_bytes(abc_segment.to_bytes())
        assert restored.segment_id == abc_segment.segment_id
        assert restored.num_columns == abc_segment.num_columns
        for item in abc_segment.items():
            assert restored.row_bits(item) == abc_segment.row_bits(item)

    def test_file_round_trip(self, abc_segment, tmp_path):
        target = abc_segment.write(tmp_path / "seg.dsg")
        restored = Segment.read(target)
        assert restored.item_counts() == abc_segment.item_counts()

    def test_empty_segment_round_trip(self, tmp_path):
        segment = Segment.from_batch(Batch([]), segment_id=3)
        restored = Segment.read(segment.write(tmp_path / "empty.dsg"))
        assert restored.num_columns == 0
        assert restored.segment_id == 3

    def test_read_missing_file(self, tmp_path):
        with pytest.raises(DSMatrixError):
            Segment.read(tmp_path / "absent.dsg")

    def test_bad_magic(self):
        with pytest.raises(DSMatrixError):
            Segment.from_bytes(b"NOPE" + b"\x00" * 16)


class TestRowSeek:
    def test_read_segment_row_seeks_one_row(self, abc_segment, tmp_path):
        target = abc_segment.write(tmp_path / "seg.dsg")
        bits, width = read_segment_row(target, "b")
        assert (bits, width) == (0b110, 3)

    def test_read_segment_row_unknown_item(self, abc_segment, tmp_path):
        target = abc_segment.write(tmp_path / "seg.dsg")
        bits, width = read_segment_row(target, "zz")
        assert bits is None
        assert width == 3

    def test_read_segment_row_missing_file(self, tmp_path):
        with pytest.raises(DSMatrixError):
            read_segment_row(tmp_path / "absent.dsg", "a")


class TestPayloadMemoisation:
    def test_to_bytes_is_memoised(self, abc_segment):
        first = abc_segment.to_bytes()
        assert abc_segment.to_bytes() is first  # cached, not re-serialised

    def test_from_bytes_seeds_the_cache(self, abc_segment):
        data = abc_segment.to_bytes()
        restored = Segment.from_bytes(data)
        assert restored.to_bytes() == data

    def test_constructor_payload_seeds_the_cache(self):
        reference = Segment(4, 2, {"a": 0b01, "b": 0b11})
        payload = reference.to_bytes()
        seeded = Segment(4, 2, {"a": 0b01, "b": 0b11}, payload=payload)
        assert seeded.to_bytes() is payload
