"""Unit tests for repro.storage.dstree.DSTree."""

from collections import Counter

import pytest

from repro.exceptions import DSTreeError
from repro.storage.dstree import DSTree
from repro.stream.batch import Batch


class TestConstruction:
    def test_invalid_window_size(self):
        with pytest.raises(DSTreeError):
            DSTree(window_size=0)

    def test_single_batch_counts(self):
        tree = DSTree(window_size=2)
        tree.append_batch(Batch([["a", "b"], ["a"], ["b"]]))
        assert tree.item_frequency("a") == 2
        assert tree.item_frequency("b") == 2
        assert tree.item_frequency("missing") == 0

    def test_prefix_sharing_reduces_nodes(self):
        tree = DSTree(window_size=1)
        tree.append_batch(Batch([["a", "b", "c"], ["a", "b", "d"], ["a", "b", "c"]]))
        # Shared prefix a-b, then c and d leaves: 4 nodes, not 9.
        assert tree.node_count() == 4

    def test_items_sorted(self):
        tree = DSTree(window_size=1)
        tree.append_batch(Batch([["c", "a"], ["b"]]))
        assert tree.items() == ["a", "b", "c"]


class TestInvariant:
    def test_parent_count_at_least_children_sum(self, paper_batches):
        tree = DSTree.from_batches(paper_batches, window_size=3)
        assert tree.check_count_invariant()

    def test_invariant_holds_after_slides(self, paper_batches):
        tree = DSTree(window_size=2)
        for batch in paper_batches:
            tree.append_batch(batch)
        assert tree.check_count_invariant()


class TestSliding:
    def test_window_frequencies_after_slide(self, paper_batches):
        tree = DSTree(window_size=2)
        for batch in paper_batches:
            tree.append_batch(batch)
        assert tree.item_frequencies() == Counter(
            {"a": 5, "c": 5, "d": 4, "f": 4, "b": 2, "e": 1}
        )

    def test_items_with_zero_total_are_pruned(self):
        tree = DSTree(window_size=1)
        tree.append_batch(Batch([["x", "y"]]))
        tree.append_batch(Batch([["z"]]))
        assert tree.item_frequency("x") == 0
        assert "x" not in tree.items()
        assert tree.node_count() == 1

    def test_num_batches_capped_at_window(self):
        tree = DSTree(window_size=2)
        for index in range(5):
            tree.append_batch(Batch([[f"i{index}"]]))
        assert tree.num_batches == 2


class TestMiningSupport:
    def test_weighted_transactions_reconstruct_window(self, paper_batches):
        tree = DSTree(window_size=2)
        for batch in paper_batches:
            tree.append_batch(batch)
        reconstructed = Counter()
        for itemset, count in tree.weighted_transactions():
            reconstructed[itemset] += count
        expected = Counter()
        for batch in paper_batches[1:]:
            expected.update(batch.transactions)
        assert reconstructed == expected

    def test_transactions_expand_multiplicities(self):
        tree = DSTree(window_size=1)
        tree.append_batch(Batch([["a", "b"], ["a", "b"], ["a"]]))
        transactions = tree.transactions()
        assert sorted(transactions) == [("a",), ("a", "b"), ("a", "b")]

    def test_projected_database_prefix_paths(self):
        tree = DSTree(window_size=1)
        tree.append_batch(Batch([["a", "b", "c"], ["b", "c"], ["a", "c"]]))
        projected = dict()
        for prefix, count in tree.projected_database("c"):
            projected[prefix] = projected.get(prefix, 0) + count
        assert projected == {("a", "b"): 1, ("b",): 1, ("a",): 1}

    def test_projected_database_for_absent_item(self):
        tree = DSTree(window_size=1)
        tree.append_batch(Batch([["a"]]))
        assert tree.projected_database("zz") == []


class TestHelpers:
    def test_from_batches_default_window(self, paper_batches):
        tree = DSTree.from_batches(paper_batches)
        assert tree.num_batches == 3
        assert tree.item_frequency("a") == 7

    def test_repr(self, paper_batches):
        tree = DSTree.from_batches(paper_batches[:1])
        assert "batches=1" in repr(tree)
