"""Smoke tests: the bundled examples stay runnable.

Only the fast examples are executed here (the heavier ones exercise the same
API paths covered by the bench/harness tests).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    path = EXAMPLES_DIR / name
    assert path.exists(), f"example {name} is missing"
    argv_backup = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv_backup
    return capsys.readouterr().out


def test_quickstart_reproduces_the_paper_numbers(capsys):
    output = run_example("quickstart.py", capsys)
    assert "15 frequent connected subgraphs" in output
    assert "support=4" in output
    # The two pruned disjoint collections are reported explicitly.
    assert "('a', 'f')" in output
    assert "('c', 'd')" in output


def test_semantic_web_example_finds_the_hot_cluster(capsys):
    output = run_example("semantic_web_stream.py", capsys)
    assert "frequent connected link structures" in output
    assert "largest recurring connected structure" in output


def test_pattern_history_example_detects_the_drift(capsys):
    output = run_example("pattern_history.py", capsys)
    assert "8 window slides journalled" in output
    # The journal's provenance queries pinpoint the traffic drift.
    assert "first became frequent at slide 4" in output
    assert "last frequent at slide 5" in output


@pytest.mark.parametrize(
    "name",
    [
        "quickstart.py",
        "semantic_web_stream.py",
        "social_network_stream.py",
        "limited_memory_disk_mining.py",
        "topk_and_time_fading.py",
        "pattern_history.py",
    ],
)
def test_every_example_exists_and_has_a_main(name):
    source = (EXAMPLES_DIR / name).read_text(encoding="utf-8")
    assert "def main()" in source
    assert '__main__' in source
