"""Unit tests for repro.graph.graph.GraphSnapshot."""

import pytest

from repro.exceptions import GraphError
from repro.graph.edge import Edge
from repro.graph.graph import GraphSnapshot


@pytest.fixture
def triangle():
    return GraphSnapshot(
        [Edge("v1", "v2"), Edge("v2", "v3"), Edge("v1", "v3")], timestamp=1
    )


class TestGraphSnapshot:
    def test_duplicate_edges_collapse(self):
        snapshot = GraphSnapshot([Edge("v1", "v2"), Edge("v2", "v1")])
        assert len(snapshot) == 1

    def test_vertices(self, triangle):
        assert triangle.vertices == {"v1", "v2", "v3"}

    def test_degree(self, triangle):
        assert triangle.degree("v1") == 2
        assert triangle.degree("v9") == 0

    def test_adjacency(self, triangle):
        adjacency = triangle.adjacency()
        assert adjacency["v1"] == {"v2", "v3"}
        assert adjacency["v2"] == {"v1", "v3"}

    def test_contains_and_iter(self, triangle):
        assert Edge("v1", "v2") in triangle
        assert Edge("v1", "v4") not in triangle
        assert set(triangle) == triangle.edges

    def test_sorted_edges_deterministic(self, triangle):
        ordered = triangle.sorted_edges()
        assert ordered == sorted(ordered, key=Edge.sort_key)

    def test_timestamp(self, triangle):
        assert triangle.timestamp == 1
        assert GraphSnapshot([]).timestamp is None

    def test_empty_snapshot_allowed(self):
        snapshot = GraphSnapshot([])
        assert len(snapshot) == 0
        assert snapshot.vertices == set()

    def test_non_edge_rejected(self):
        with pytest.raises(GraphError):
            GraphSnapshot(["not-an-edge"])

    def test_equality_ignores_timestamp(self):
        a = GraphSnapshot([Edge("v1", "v2")], timestamp=1)
        b = GraphSnapshot([Edge("v1", "v2")], timestamp=7)
        assert a == b
        assert hash(a) == hash(b)

    def test_repr_contains_edge_count(self, triangle):
        assert "3 edges" in repr(triangle)
