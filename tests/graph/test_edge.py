"""Unit tests for repro.graph.edge."""

import pytest

from repro.exceptions import GraphError
from repro.graph.edge import Edge


class TestEdgeConstruction:
    def test_canonical_order_of_endpoints(self):
        assert Edge("v2", "v1").vertices == ("v1", "v2")
        assert Edge("v1", "v2").vertices == ("v1", "v2")

    def test_equal_regardless_of_endpoint_order(self):
        assert Edge("v1", "v2") == Edge("v2", "v1")
        assert hash(Edge("v1", "v2")) == hash(Edge("v2", "v1"))

    def test_label_distinguishes_edges(self):
        assert Edge("a", "b", label="knows") != Edge("a", "b", label="likes")
        assert Edge("a", "b", label="knows") != Edge("a", "b")

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Edge("v1", "v1")

    def test_none_endpoint_rejected(self):
        with pytest.raises(GraphError):
            Edge(None, "v1")
        with pytest.raises(GraphError):
            Edge("v1", None)

    def test_integer_vertices_supported(self):
        edge = Edge(5, 2)
        assert edge.vertices == (2, 5)

    def test_mixed_type_vertices_fall_back_to_repr_order(self):
        edge = Edge("v1", 2)
        assert set(edge.vertices) == {"v1", 2}

    def test_repr_mentions_endpoints(self):
        assert "v1" in repr(Edge("v1", "v2"))
        assert "knows" in repr(Edge("v1", "v2", label="knows"))


class TestEdgeAccessors:
    def test_other_returns_opposite_endpoint(self):
        edge = Edge("v1", "v2")
        assert edge.other("v1") == "v2"
        assert edge.other("v2") == "v1"

    def test_other_raises_for_non_endpoint(self):
        with pytest.raises(GraphError):
            Edge("v1", "v2").other("v3")

    def test_contains_endpoint(self):
        edge = Edge("v1", "v2")
        assert "v1" in edge
        assert "v2" in edge
        assert "v3" not in edge

    def test_iteration_yields_both_endpoints(self):
        assert list(Edge("v1", "v2")) == ["v1", "v2"]

    def test_shares_vertex_with(self):
        a = Edge("v1", "v2")
        assert a.shares_vertex_with(Edge("v2", "v3"))
        assert a.shares_vertex_with(Edge("v1", "v4"))
        assert not a.shares_vertex_with(Edge("v3", "v4"))

    def test_sort_key_is_deterministic(self):
        edges = [Edge("v3", "v1"), Edge("v1", "v2"), Edge("v2", "v3")]
        ordered = sorted(edges, key=Edge.sort_key)
        assert ordered[0] == Edge("v1", "v2")

    def test_ordering_operator(self):
        assert Edge("v1", "v2") < Edge("v1", "v3")

    def test_equality_with_non_edge(self):
        assert Edge("v1", "v2") != "not an edge"
