"""Unit tests for repro.graph.connectivity."""

from repro.graph.connectivity import (
    connected_components_of_edges,
    is_connected_edge_set,
    satisfies_paper_rule,
    vertex_frequencies,
)
from repro.graph.edge import Edge


def edges(*pairs):
    return [Edge(u, v) for u, v in pairs]


class TestVertexFrequencies:
    def test_counts_endpoint_occurrences(self):
        counts = vertex_frequencies(edges(("v1", "v2"), ("v2", "v3")))
        assert counts["v2"] == 2
        assert counts["v1"] == 1
        assert counts["v3"] == 1

    def test_empty(self):
        assert vertex_frequencies([]) == {}


class TestPaperRule:
    def test_singleton_trivially_connected(self):
        assert satisfies_paper_rule(edges(("v1", "v2")))
        assert satisfies_paper_rule([])

    def test_paper_example_connected_pair(self):
        # {a, c} = {(v1,v2), (v1,v4)} shares v1 (Example 6).
        assert satisfies_paper_rule(edges(("v1", "v2"), ("v1", "v4")))

    def test_paper_example_disjoint_pair(self):
        # {a, f} = {(v1,v2), (v3,v4)} is disjoint (Example 6).
        assert not satisfies_paper_rule(edges(("v1", "v2"), ("v3", "v4")))

    def test_paper_example_disjoint_cd(self):
        # {c, d} = {(v1,v4), (v2,v3)} is disjoint (Example 6).
        assert not satisfies_paper_rule(edges(("v1", "v4"), ("v2", "v3")))

    def test_rule_accepts_two_disjoint_triangles(self):
        # Documented divergence: the §3.5 rule is necessary but not sufficient.
        two_triangles = edges(
            ("a1", "a2"), ("a2", "a3"), ("a1", "a3"),
            ("b1", "b2"), ("b2", "b3"), ("b1", "b3"),
        )
        assert satisfies_paper_rule(two_triangles)
        assert not is_connected_edge_set(two_triangles)


class TestExactConnectivity:
    def test_empty_and_singleton_connected(self):
        assert is_connected_edge_set([])
        assert is_connected_edge_set(edges(("v1", "v2")))

    def test_path_is_connected(self):
        assert is_connected_edge_set(edges(("v1", "v2"), ("v2", "v3"), ("v3", "v4")))

    def test_star_is_connected(self):
        assert is_connected_edge_set(edges(("c", "x"), ("c", "y"), ("c", "z")))

    def test_disjoint_pair_not_connected(self):
        assert not is_connected_edge_set(edges(("v1", "v2"), ("v3", "v4")))

    def test_bridgeless_components_not_connected(self):
        assert not is_connected_edge_set(
            edges(("v1", "v2"), ("v2", "v3"), ("v5", "v6"))
        )

    def test_cycle_is_connected(self):
        assert is_connected_edge_set(
            edges(("v1", "v2"), ("v2", "v3"), ("v3", "v4"), ("v4", "v1"))
        )

    def test_exact_implies_paper_rule(self):
        # Exact connectivity is strictly stronger for |X| >= 2.
        cases = [
            edges(("v1", "v2"), ("v2", "v3")),
            edges(("v1", "v2"), ("v2", "v3"), ("v3", "v4"), ("v1", "v4")),
            edges(("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")),
        ]
        for case in cases:
            assert is_connected_edge_set(case)
            assert satisfies_paper_rule(case)


class TestComponents:
    def test_single_component(self):
        comps = connected_components_of_edges(edges(("v1", "v2"), ("v2", "v3")))
        assert len(comps) == 1
        assert len(comps[0]) == 2

    def test_two_components(self):
        comps = connected_components_of_edges(
            edges(("v1", "v2"), ("v3", "v4"), ("v4", "v5"))
        )
        assert len(comps) == 2
        sizes = sorted(len(c) for c in comps)
        assert sizes == [1, 2]

    def test_empty(self):
        assert connected_components_of_edges([]) == []

    def test_components_partition_the_edges(self):
        edge_list = edges(("v1", "v2"), ("v3", "v4"), ("v2", "v6"), ("v7", "v8"))
        comps = connected_components_of_edges(edge_list)
        flattened = [edge for comp in comps for edge in comp]
        assert sorted(flattened, key=Edge.sort_key) == sorted(edge_list, key=Edge.sort_key)
