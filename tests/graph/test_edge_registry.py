"""Unit tests for repro.graph.edge_registry.EdgeRegistry."""

import pytest

from repro.exceptions import EdgeRegistryError
from repro.graph.edge import Edge
from repro.graph.edge_registry import EdgeRegistry
from repro.graph.graph import GraphSnapshot


class TestRegistration:
    def test_auto_symbols_follow_alphabet(self):
        registry = EdgeRegistry()
        assert registry.register(Edge("v1", "v2")) == "a"
        assert registry.register(Edge("v1", "v3")) == "b"
        assert registry.register(Edge("v1", "v4")) == "c"

    def test_reregistering_returns_existing_symbol(self):
        registry = EdgeRegistry()
        first = registry.register(Edge("v1", "v2"))
        second = registry.register(Edge("v2", "v1"))
        assert first == second
        assert len(registry) == 1

    def test_explicit_symbol(self):
        registry = EdgeRegistry()
        assert registry.register(Edge("v1", "v2"), "x") == "x"
        assert registry.edge_for("x") == Edge("v1", "v2")

    def test_conflicting_rename_rejected(self):
        registry = EdgeRegistry()
        registry.register(Edge("v1", "v2"), "x")
        with pytest.raises(EdgeRegistryError):
            registry.register(Edge("v1", "v2"), "y")

    def test_duplicate_symbol_rejected(self):
        registry = EdgeRegistry()
        registry.register(Edge("v1", "v2"), "x")
        with pytest.raises(EdgeRegistryError):
            registry.register(Edge("v1", "v3"), "x")

    def test_frozen_registry_rejects_new_edges(self):
        registry = EdgeRegistry()
        registry.register(Edge("v1", "v2"))
        registry.freeze()
        assert registry.frozen
        with pytest.raises(EdgeRegistryError):
            registry.register(Edge("v1", "v3"))

    def test_frozen_registry_still_returns_known_edges(self):
        registry = EdgeRegistry()
        symbol = registry.register(Edge("v1", "v2"))
        registry.freeze()
        assert registry.register(Edge("v1", "v2")) == symbol

    def test_many_edges_get_unique_symbols(self):
        registry = EdgeRegistry()
        edges = [Edge(f"v{i}", f"v{i + 1}") for i in range(40)]
        symbols = [registry.register(edge) for edge in edges]
        assert len(set(symbols)) == 40


class TestLookups:
    def test_item_for_unknown_edge_raises(self):
        with pytest.raises(EdgeRegistryError):
            EdgeRegistry().item_for(Edge("v1", "v2"))

    def test_edge_for_unknown_item_raises(self):
        with pytest.raises(EdgeRegistryError):
            EdgeRegistry().edge_for("zz")

    def test_vertices_of(self, paper_registry):
        assert paper_registry.vertices_of("a") == ("v1", "v2")
        assert paper_registry.vertices_of("f") == ("v3", "v4")

    def test_contains_edge_and_item(self, paper_registry):
        assert Edge("v1", "v2") in paper_registry
        assert "a" in paper_registry
        assert "zz" not in paper_registry

    def test_items_in_canonical_order(self, paper_registry):
        assert paper_registry.items() == ["a", "b", "c", "d", "e", "f"]

    def test_edges_parallel_to_items(self, paper_registry):
        edges = paper_registry.edges()
        assert edges[0] == Edge("v1", "v2")
        assert len(edges) == 6


class TestNeighborhood:
    def test_paper_table2(self, paper_registry):
        # Table 2 of the paper.
        assert paper_registry.neighbors_of("a") == frozenset({"b", "c", "d", "e"})
        assert paper_registry.neighbors_of("b") == frozenset({"a", "c", "d", "f"})
        assert paper_registry.neighbors_of("c") == frozenset({"a", "b", "e", "f"})
        assert paper_registry.neighbors_of("d") == frozenset({"a", "b", "e", "f"})
        assert paper_registry.neighbors_of("e") == frozenset({"a", "c", "d", "f"})
        assert paper_registry.neighbors_of("f") == frozenset({"b", "c", "d", "e"})

    def test_neighborhood_table_covers_all_items(self, paper_registry):
        table = paper_registry.neighborhood_table()
        assert set(table) == {"a", "b", "c", "d", "e", "f"}

    def test_itemset_neighborhood_eq1(self, paper_registry):
        # neighbor({a, c}) = neighbor(a) ∪ neighbor(c) − {a, c} = {b, d, e, f}
        assert paper_registry.neighbors_of_itemset({"a", "c"}) == frozenset(
            {"b", "d", "e", "f"}
        )

    def test_itemset_neighborhood_eq2(self, paper_registry):
        # neighbor({a, c, d}) as computed in Example 7: {b, e, f}
        assert paper_registry.neighbors_of_itemset({"a", "c", "d"}) == frozenset(
            {"b", "e", "f"}
        )

    def test_neighbors_never_include_self(self, paper_registry):
        for item in paper_registry.items():
            assert item not in paper_registry.neighbors_of(item)


class TestEncodeDecode:
    def test_encode_registers_new_edges_by_default(self):
        registry = EdgeRegistry()
        snapshot = GraphSnapshot([Edge("v1", "v2"), Edge("v2", "v3")])
        transaction = registry.encode(snapshot)
        assert transaction == ("a", "b")

    def test_encode_without_registration_raises(self):
        registry = EdgeRegistry()
        snapshot = GraphSnapshot([Edge("v1", "v2")])
        with pytest.raises(EdgeRegistryError):
            registry.encode(snapshot, register_new=False)

    def test_encode_is_sorted(self, paper_registry, paper_snapshots):
        transaction = paper_registry.encode(paper_snapshots[3], register_new=False)
        assert transaction == ("a", "c", "d", "f")

    def test_decode_round_trip(self, paper_registry):
        edges = paper_registry.decode({"a", "f"})
        assert edges == frozenset({Edge("v1", "v2"), Edge("v3", "v4")})

    def test_decode_pattern_returns_vertex_pairs(self, paper_registry):
        assert paper_registry.decode_pattern({"a", "c"}) == [("v1", "v2"), ("v1", "v4")]


class TestConstructors:
    def test_from_edges_with_symbols(self):
        registry = EdgeRegistry.from_edges(
            [Edge("v1", "v2"), Edge("v3", "v4")], symbols=["x", "y"]
        )
        assert registry.item_for(Edge("v3", "v4")) == "y"

    def test_from_edges_symbol_length_mismatch(self):
        with pytest.raises(EdgeRegistryError):
            EdgeRegistry.from_edges([Edge("v1", "v2")], symbols=["x", "y"])

    def test_complete_graph_matches_paper_table1(self, paper_registry):
        complete = EdgeRegistry.complete_graph(["v1", "v2", "v3", "v4"])
        assert complete.items() == ["a", "b", "c", "d", "e", "f"]
        for item in complete.items():
            assert complete.vertices_of(item) == paper_registry.vertices_of(item)

    def test_repr(self, paper_registry):
        assert "6 edges" in repr(paper_registry)
