"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.datasets.paper_example import (
    paper_example_batches,
    paper_example_registry,
    paper_example_snapshots,
)
from repro.storage.dsmatrix import DSMatrix


@pytest.fixture
def paper_registry():
    """The edge registry of the paper's Table 1 (items a-f)."""
    return paper_example_registry()


@pytest.fixture
def paper_batches():
    """The three batches B1-B3 of the paper's running example."""
    return paper_example_batches()


@pytest.fixture
def paper_snapshots():
    """The nine streamed graphs E1-E9."""
    return paper_example_snapshots()


@pytest.fixture
def paper_window_matrix(paper_batches):
    """A DSMatrix holding the window of batches B2-B3 (graphs E4-E9)."""
    matrix = DSMatrix(window_size=2)
    for batch in paper_batches:
        matrix.append_batch(batch)
    return matrix
