"""End-to-end integration tests across the whole pipeline.

These tests exercise realistic flows: linked-data triples in, connected
frequent subgraphs out; random graph streams with window slides and on-disk
persistence; and consistency between the facade and the low-level pieces.
"""

import pytest

from repro import (
    DSMatrix,
    Edge,
    EdgeRegistry,
    GraphStream,
    StreamSubgraphMiner,
)
from repro.core.algorithms import ALGORITHMS
from repro.datasets.random_graphs import GraphStreamGenerator, RandomGraphModel
from repro.linked_data.namespace import FOAF, Namespace
from repro.linked_data.parser import parse_ntriples, serialize_ntriples
from repro.linked_data.rdf_stream import RDFStreamAdapter
from repro.linked_data.triple import Triple
from tests.helpers import brute_force_connected_frequent

EX = Namespace("http://example.org/people/")


def social_documents():
    """Twelve published documents, each linking a handful of people."""
    clusters = [
        ["alice", "bob", "carol"],
        ["bob", "carol", "dave"],
        ["alice", "bob", "dave"],
        ["erin", "frank", "grace"],
    ]
    documents = []
    for round_index in range(3):
        for cluster in clusters:
            triples = [
                Triple(EX[cluster[i]], FOAF.knows, EX[cluster[j]])
                for i in range(len(cluster))
                for j in range(i + 1, len(cluster))
            ]
            documents.append(triples)
    return documents


class TestLinkedDataPipeline:
    def test_ntriples_to_connected_subgraphs(self):
        documents = social_documents()
        # Serialise and re-parse to exercise the full IO path.
        texts = [serialize_ntriples(doc) for doc in documents]
        parsed_documents = [list(parse_ntriples(text)) for text in texts]

        adapter = RDFStreamAdapter()
        snapshots = list(adapter.snapshots_from_documents(parsed_documents))
        miner = StreamSubgraphMiner(window_size=3, batch_size=4)
        miner.add_snapshots(snapshots)
        result = miner.mine(minsup=3)

        assert len(result) > 0
        # The alice-bob-carol triangle is frequent and connected.
        registry = miner.registry
        triangle = frozenset(
            registry.item_for(Edge(EX[a].value, EX[b].value, label=FOAF.knows.value))
            for a, b in [("alice", "bob"), ("alice", "carol"), ("bob", "carol")]
        )
        assert result.support_of(triangle) == 3
        for pattern in result:
            assert pattern.is_connected()

    def test_cross_cluster_patterns_are_not_reported(self):
        documents = social_documents()
        adapter = RDFStreamAdapter()
        snapshots = list(adapter.snapshots_from_documents(documents))
        miner = StreamSubgraphMiner(window_size=3, batch_size=4)
        miner.add_snapshots(snapshots)
        result = miner.mine(minsup=2)
        registry = miner.registry
        alice_bob = registry.item_for(
            Edge(EX.alice.value, EX.bob.value, label=FOAF.knows.value)
        )
        erin_frank = registry.item_for(
            Edge(EX.erin.value, EX.frank.value, label=FOAF.knows.value)
        )
        # Both edges are frequent but never connected, so no pattern contains both.
        assert result.support_of({alice_bob}) is not None
        assert result.support_of({erin_frank}) is not None
        for pattern in result:
            assert not {alice_bob, erin_frank} <= pattern.items


class TestGraphStreamPipeline:
    def test_stream_with_persistence_and_all_algorithms(self, tmp_path):
        model = RandomGraphModel(num_vertices=12, avg_fanout=3.0, seed=31)
        registry = model.registry()
        generator = GraphStreamGenerator(model, avg_edges_per_snapshot=5.0, seed=32)
        snapshots = generator.generate(120)

        storage = tmp_path / "window.dsm"
        miner = StreamSubgraphMiner(
            window_size=4,
            batch_size=20,
            registry=registry,
            storage_path=storage,
            algorithm="vertical",
        )
        stream = GraphStream(snapshots, registry=registry, batch_size=20)
        miner.consume(stream)

        assert storage.exists()
        reloaded = DSMatrix.load(storage)
        assert list(reloaded.transactions()) == list(miner.matrix.transactions())

        window_transactions = list(miner.matrix.transactions())
        expected_connected = brute_force_connected_frequent(
            window_transactions, 8, registry
        )
        for name in sorted(ALGORITHMS):
            result = miner.mine(8, algorithm=name)
            assert result.to_dict() == expected_connected, name

    def test_window_eviction_forgets_old_patterns(self):
        registry = EdgeRegistry()
        hot_early = [Edge("a", "b"), Edge("b", "c")]
        hot_late = [Edge("x", "y"), Edge("y", "z")]
        for edge in hot_early + hot_late:
            registry.register(edge)

        miner = StreamSubgraphMiner(window_size=2, batch_size=5, registry=registry)
        from repro.graph.graph import GraphSnapshot

        early = [GraphSnapshot(hot_early) for _ in range(10)]
        late = [GraphSnapshot(hot_late) for _ in range(10)]
        miner.add_snapshots(early + late)

        result = miner.mine(minsup=5)
        early_pair = frozenset(registry.item_for(edge) for edge in hot_early)
        late_pair = frozenset(registry.item_for(edge) for edge in hot_late)
        assert result.support_of(early_pair) is None
        assert result.support_of(late_pair) == 10
