"""Unit suite of the pipelined as-completed executor (DESIGN.md §9).

Pins down the engine's contract: consumer sees results in task (stream)
order under every mode, at most ``max_inflight`` tasks are
submitted-but-uncommitted, task exceptions propagate unchanged, and
``workers=0`` is the deterministic in-process reference.
"""

import time

import pytest

from repro.exceptions import ParallelMiningError
from repro.parallel.pipeline import (
    PipelineExecutor,
    default_max_inflight,
)
from repro.parallel.pool import process_pools_available

pool_required = pytest.mark.skipif(
    not process_pools_available(), reason="process pools unavailable here"
)


def square(value):
    return value * value


def sleep_then_square(spec):
    """(value, delay) -> value**2 after sleeping; later tasks finish first."""
    value, delay = spec
    time.sleep(delay)
    return value * value


def fail_on_negative(value):
    if value < 0:
        raise ValueError(f"bad task {value}")
    return value


class TestInProcessMode:
    def test_results_committed_in_task_order(self):
        consumed = []
        executor = PipelineExecutor(workers=0)
        stats = executor.run(square, range(10), consumed.append)
        assert consumed == [i * i for i in range(10)]
        assert stats.execution_mode == "in-process"
        assert stats.tasks == stats.committed == 10
        assert stats.peak_inflight == 1  # compute-then-commit, one at a time

    def test_initializer_runs_once_before_tasks(self):
        calls = []
        executor = PipelineExecutor(workers=0)
        executor.run(
            square,
            [1, 2],
            lambda result: calls.append(("result", result)),
            initializer=lambda tag: calls.append(("init", tag)),
            initargs=("ctx",),
        )
        assert calls == [("init", "ctx"), ("result", 1), ("result", 4)]

    def test_empty_plan(self):
        consumed = []
        stats = PipelineExecutor(workers=0).run(square, [], consumed.append)
        assert consumed == []
        assert stats.tasks == stats.committed == stats.peak_inflight == 0

    def test_task_exception_propagates(self):
        consumed = []
        with pytest.raises(ValueError, match="bad task -1"):
            PipelineExecutor(workers=0).run(
                fail_on_negative, [0, 1, -1, 2], consumed.append
            )
        assert consumed == [0, 1]  # everything before the failure committed

    def test_consumer_exception_propagates(self):
        def consumer(result):
            raise RuntimeError("consumer broke")

        with pytest.raises(RuntimeError, match="consumer broke"):
            PipelineExecutor(workers=0).run(square, [1], consumer)


class TestPoolMode:
    @pool_required
    def test_out_of_order_completions_reordered(self):
        # The first tasks sleep longest, so later tasks complete first;
        # the consumer must still see strict stream order.
        specs = [(i, 0.12 - 0.02 * i) for i in range(6)]
        consumed = []
        executor = PipelineExecutor(workers=2, max_inflight=6)
        stats = executor.run(sleep_then_square, specs, consumed.append)
        assert consumed == [i * i for i in range(6)]
        assert stats.execution_mode == "pipelined-pool"
        assert stats.committed == 6

    @pool_required
    @pytest.mark.parametrize("max_inflight", [1, 2, 3])
    def test_inflight_accounting_bounded(self, max_inflight):
        consumed = []
        executor = PipelineExecutor(workers=2, max_inflight=max_inflight)
        stats = executor.run(square, range(8), consumed.append)
        assert consumed == [i * i for i in range(8)]
        assert stats.committed == 8
        assert 1 <= stats.peak_inflight <= max_inflight

    @pool_required
    def test_matches_in_process_reference(self):
        reference = []
        PipelineExecutor(workers=0).run(square, range(12), reference.append)
        for max_inflight in (1, 2, 8):
            consumed = []
            PipelineExecutor(workers=2, max_inflight=max_inflight).run(
                square, range(12), consumed.append
            )
            assert consumed == reference

    @pool_required
    def test_worker_exception_propagates_and_cancels(self):
        consumed = []
        with pytest.raises(ValueError, match="bad task -5"):
            PipelineExecutor(workers=2, max_inflight=2).run(
                fail_on_negative, [0, 1, -5, 2, 3, 4], consumed.append
            )
        # Commits are ordered, so whatever reached the consumer is a strict
        # prefix of the pre-failure stream.
        assert consumed == [0, 1][: len(consumed)]

    @pool_required
    def test_lazy_plan_is_not_materialised(self):
        pulled = []

        def plan():
            for index in range(6):
                pulled.append(index)
                yield index

        consumed = []
        PipelineExecutor(workers=2, max_inflight=2).run(
            square, plan(), consumed.append
        )
        assert consumed == [i * i for i in range(6)]
        assert pulled == list(range(6))  # all pulled, but only on credit


class TestConfiguration:
    def test_negative_workers_rejected(self):
        with pytest.raises(ParallelMiningError):
            PipelineExecutor(workers=-1)

    def test_zero_max_inflight_rejected(self):
        with pytest.raises(ParallelMiningError):
            PipelineExecutor(workers=1, max_inflight=0)

    def test_default_max_inflight(self):
        assert default_max_inflight(0) == 1
        assert default_max_inflight(1) == 2
        assert default_max_inflight(4) == 8
        assert PipelineExecutor(workers=3).max_inflight == 6
        assert PipelineExecutor(workers=3, max_inflight=1).max_inflight == 1
