"""Persistent worker pools and transport degradation paths (DESIGN.md §11)."""

import glob

import pytest

from repro.core.export import result_to_json
from repro.core.miner import StreamSubgraphMiner
from repro.datasets.random_graphs import GraphStreamGenerator, RandomGraphModel
from repro.exceptions import MiningError, ParallelMiningError, SharedMemoryError
from repro.parallel.pool import (
    PersistentWorkerPool,
    effective_workers,
    process_pools_available,
)


def _make_miner(transport="auto"):
    model = RandomGraphModel(num_vertices=10, avg_fanout=3.0, seed=7)
    registry = model.registry()
    generator = GraphStreamGenerator(model, avg_edges_per_snapshot=4.0, seed=8)
    miner = StreamSubgraphMiner(
        window_size=3,
        batch_size=15,
        algorithm="vertical",
        registry=registry,
        transport=transport,
    )
    miner.add_snapshots(list(generator.snapshots(90)))
    return miner


def _mine(miner, workers):
    result = miner.mine(minsup=3, connected_only=True, workers=workers)
    return result_to_json(result, miner.registry)


class TestEffectiveWorkers:
    def test_sequential_request_stays_sequential(self):
        assert effective_workers(0, 10) == 0
        assert effective_workers(-2, 10) == 0

    def test_single_task_plans_run_in_process(self):
        assert effective_workers(4, 1) == 0
        assert effective_workers(4, 0) == 0

    def test_workers_capped_by_task_count(self):
        assert effective_workers(8, 3) == 3
        assert effective_workers(2, 5) == 2


class TestPersistentWorkerPool:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ParallelMiningError):
            PersistentWorkerPool(0)

    def test_executor_spawns_lazily_and_is_reused(self):
        with PersistentWorkerPool(1) as pool:
            assert pool.spawn_count == 0
            first = pool.executor()
            assert pool.spawn_count == 1
            assert pool.executor() is first
            assert pool.spawn_count == 1

    def test_mark_broken_respawns_on_next_use(self):
        with PersistentWorkerPool(1) as pool:
            first = pool.executor()
            pool.mark_broken()
            second = pool.executor()
            assert second is not first
            assert pool.spawn_count == 2

    def test_close_is_idempotent_and_blocks_reuse(self):
        pool = PersistentWorkerPool(1)
        pool.executor()
        pool.close()
        pool.close()
        assert pool.closed
        with pytest.raises(ParallelMiningError):
            pool.executor()


class TestMinerPoolLifecycle:
    def test_pool_amortised_across_mines(self):
        if not process_pools_available():
            pytest.skip("no process pools on this host")
        with _make_miner() as miner:
            reference = _mine(miner, workers=0)
            for _ in range(3):
                assert _mine(miner, workers=2) == reference
            assert miner.mining_pool is not None
            assert miner.mining_pool.spawn_count == 1

    def test_single_shard_plan_never_spawns(self):
        # workers=1 means one shard, and a one-shard plan runs in-process:
        # paying a process spawn to do sequential work was the old
        # workers=1 pathology (DESIGN.md §11).
        with _make_miner() as miner:
            reference = _mine(miner, workers=0)
            assert _mine(miner, workers=1) == reference
            pool = miner.mining_pool
            assert pool is None or pool.spawn_count == 0

    def test_pool_recreated_on_worker_count_change(self):
        if not process_pools_available():
            pytest.skip("no process pools on this host")
        with _make_miner() as miner:
            _mine(miner, workers=2)
            first = miner.mining_pool
            _mine(miner, workers=3)
            second = miner.mining_pool
            assert first.closed
            assert second is not first
            assert second.workers == 3

    def test_close_shuts_pool_and_miner_stays_usable(self):
        if not process_pools_available():
            pytest.skip("no process pools on this host")
        miner = _make_miner()
        reference = _mine(miner, workers=0)
        assert _mine(miner, workers=2) == reference
        pool = miner.mining_pool
        miner.close()
        miner.close()  # idempotent
        assert pool.closed
        assert miner.mining_pool is None
        # The miner itself survives close(); the next run gets a new pool.
        assert _mine(miner, workers=2) == reference
        miner.close()

    def test_no_shared_memory_leaks_after_mining(self):
        if not process_pools_available():
            pytest.skip("no process pools on this host")
        with _make_miner() as miner:
            _mine(miner, workers=2)
        assert glob.glob("/dev/shm/psm_*") == []


class TestDegradation:
    def test_pools_unavailable_falls_back_in_process(self, monkeypatch):
        with _make_miner() as miner:
            reference = _mine(miner, workers=0)
            monkeypatch.setattr(
                "repro.parallel.pipeline.process_pools_available", lambda: False
            )
            assert _mine(miner, workers=2) == reference
            pool = miner.mining_pool
            assert pool is None or pool.spawn_count == 0

    def test_forced_shm_transport_raises_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(
            "repro.parallel.api.shared_memory_available", lambda: False
        )
        with _make_miner(transport="shm") as miner:
            with pytest.raises(ParallelMiningError):
                miner.mine(minsup=3, connected_only=True, workers=2)

    def test_unknown_transport_rejected(self):
        with pytest.raises(MiningError):
            StreamSubgraphMiner(
                window_size=3, batch_size=15, transport="carrier-pigeon"
            )

    def test_shm_attach_failure_falls_back_to_pickle(self, monkeypatch):
        import multiprocessing

        if not process_pools_available():
            pytest.skip("no process pools on this host")
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("patch only reaches workers under the fork method")

        def _broken_read(name, offset, size):
            raise SharedMemoryError(f"simulated attach failure for {name}")

        with _make_miner() as miner:
            reference = _mine(miner, workers=0)
            monkeypatch.setattr(
                "repro.storage.shm.read_shared_block", _broken_read
            )
            # The arena is published, every worker fails to attach, and the
            # run re-executes once over pickled payload handles — same
            # answer, no leaked blocks.
            assert _mine(miner, workers=2) == reference
        assert glob.glob("/dev/shm/psm_*") == []
