"""Unit tests for the shard planner and the worker pool executor."""

import pytest

from repro.exceptions import ParallelMiningError
from repro.parallel import ShardPlanner, WorkerPool
from repro.parallel.worker import WindowTask, rebuild_window
from repro.storage.backend import MemoryWindowStore
from repro.storage.segments import SegmentHandle
from repro.stream.batch import Batch


def _raise_oserror(value):
    raise OSError(f"task {value} failed")


def build_store(batch_sizes, window_size=None):
    store = MemoryWindowStore(window_size or len(batch_sizes))
    for index, size in enumerate(batch_sizes):
        transactions = [
            (f"i{index}", f"j{column % 3}") for column in range(size)
        ]
        store.append_batch(Batch(transactions, batch_id=index))
    return store


class TestShardPlanner:
    def test_rejects_non_positive_shard_count(self):
        with pytest.raises(ParallelMiningError):
            ShardPlanner(0)

    def test_empty_plans(self):
        planner = ShardPlanner(4)
        assert planner.plan_segments([]) == []
        assert planner.plan_items([]) == []

    def test_segment_shards_cover_window_contiguously(self):
        store = build_store([5, 3, 8, 2, 6, 1])
        shards = ShardPlanner(3).plan_segments(store.segment_handles())
        assert 1 <= len(shards) <= 3
        # Contiguous coverage: offsets chain and columns add up.
        offset = 0
        segment_ids = []
        for shard in shards:
            assert shard.column_offset == offset
            offset += shard.num_columns
            segment_ids.extend(handle.segment_id for handle in shard.handles)
        assert offset == store.num_columns
        assert segment_ids == [s.segment_id for s in store.segments()]

    def test_more_shards_than_segments_degrades_to_one_each(self):
        store = build_store([4, 4])
        shards = ShardPlanner(8).plan_segments(store.segment_handles())
        assert len(shards) == 2
        assert all(len(shard.handles) == 1 for shard in shards)

    def test_item_shards_partition_round_robin(self):
        items = ["a", "b", "c", "d", "e"]
        shards = ShardPlanner(2).plan_items(items)
        assert [list(s.items) for s in shards] == [["a", "c", "e"], ["b", "d"]]
        flattened = sorted(i for s in shards for i in s.items)
        assert flattened == items

    def test_item_plan_is_deterministic(self):
        items = [f"x{i}" for i in range(17)]
        assert ShardPlanner(4).plan_items(items) == ShardPlanner(4).plan_items(items)


class TestWorkerPool:
    def test_rejects_negative_workers(self):
        with pytest.raises(ParallelMiningError):
            WorkerPool(-1)

    def test_in_process_mode_preserves_order(self):
        pool = WorkerPool(0)
        assert pool.map(str.upper, ["a", "b", "c"]) == ["A", "B", "C"]
        assert pool.last_execution_mode == "in-process"

    def test_pool_mode_preserves_order(self):
        pool = WorkerPool(2)
        assert pool.map(len, ["x", "xx", "xxx", "xxxx"]) == [1, 2, 3, 4]

    def test_single_task_still_uses_a_real_pool(self):
        # workers >= 1 must honestly measure pool overhead even for one
        # task — it is the baseline of the strong-scaling experiment.
        pool = WorkerPool(4)
        assert pool.map(len, ["abc"]) == [3]
        assert pool.last_execution_mode == "pool"

    def test_empty_task_list(self):
        pool = WorkerPool(4)
        assert pool.map(len, []) == []
        assert pool.last_execution_mode == "in-process"

    def test_task_exceptions_propagate_from_pool_mode(self):
        with pytest.raises(OSError):
            WorkerPool(2).map(_raise_oserror, [1, 2, 3])

    def test_in_process_mode_runs_initializer_first(self):
        calls = []
        pool = WorkerPool(0)
        result = pool.map(
            lambda x: (calls[0], x),
            ["a", "b"],
            initializer=calls.append,
            initargs=("ready",),
        )
        assert calls == ["ready"]
        assert result == [("ready", "a"), ("ready", "b")]


class TestWindowRebuild:
    def test_rebuild_reproduces_rows_and_counters(self):
        store = build_store([3, 4, 2])
        task = WindowTask(
            window_size=store.window_size,
            handles=tuple(store.segment_handles()),
            known_items=tuple(store.items()),
        )
        rebuilt = rebuild_window(task)
        assert rebuilt.items() == store.items()
        assert rebuilt.num_columns == store.num_columns
        assert rebuilt.batch_sizes() == store.batch_sizes()
        for item in store.items():
            assert rebuilt.row(item).bits == store.row(item).bits
        assert rebuilt.item_frequencies() == store.item_frequencies()


class TestSegmentHandle:
    def test_requires_exactly_one_source(self):
        from repro.exceptions import DSMatrixError

        with pytest.raises(DSMatrixError):
            SegmentHandle(segment_id=0, num_columns=3)
        with pytest.raises(DSMatrixError):
            SegmentHandle(segment_id=0, num_columns=3, path="x", payload=b"y")
