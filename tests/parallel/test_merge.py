"""Unit tests for the merge layer (shard counter and pattern combination)."""

from collections import Counter

import pytest

from repro.core.algorithms.base import MiningStats
from repro.exceptions import ParallelMiningError
from repro.parallel import (
    ShardPlanner,
    count_segment_shard,
    merge_pattern_counts,
    merge_stats,
    merge_support_counts,
)
from repro.storage.backend import MemoryWindowStore
from repro.stream.batch import Batch


def build_store(num_batches=6, window_size=6):
    store = MemoryWindowStore(window_size)
    for index in range(num_batches):
        store.append_batch(
            Batch(
                [("a", "b"), ("b", "c"), ("a", f"x{index}")],
                batch_id=index,
            )
        )
    return store


class TestSupportCounterMerge:
    def test_shard_counters_sum_to_window_counters(self):
        store = build_store()
        shards = ShardPlanner(3).plan_segments(store.segment_handles())
        assert len(shards) == 3
        merged = merge_support_counts(count_segment_shard(s) for s in shards)
        expected = {i: c for i, c in store.item_frequencies().items() if c}
        assert dict(merged) == expected

    def test_merge_is_additive_not_overwriting(self):
        merged = merge_support_counts([{"a": 2, "b": 1}, {"a": 3}, {"c": 4}])
        assert merged == Counter({"a": 5, "b": 1, "c": 4})

    def test_single_shard_plan_covers_whole_window(self):
        store = build_store()
        (shard,) = ShardPlanner(1).plan_segments(store.segment_handles())
        assert shard.num_columns == store.num_columns
        assert shard.column_offset == 0


class TestPatternMerge:
    def test_disjoint_union(self):
        left = {frozenset({"a"}): 3, frozenset({"a", "b"}): 2}
        right = {frozenset({"b"}): 4}
        merged = merge_pattern_counts([left, right])
        assert merged == {**left, **right}

    def test_identical_duplicates_are_tolerated(self):
        part = {frozenset({"a"}): 3}
        assert merge_pattern_counts([part, dict(part)]) == part

    def test_conflicting_support_raises(self):
        with pytest.raises(ParallelMiningError):
            merge_pattern_counts(
                [{frozenset({"a"}): 3}, {frozenset({"a"}): 4}]
            )


class TestStatsMerge:
    def test_counters_add_and_high_water_marks_max(self):
        merged = merge_stats(
            [
                {
                    "fptrees_built": 2,
                    "max_fptree_nodes": 10,
                    "bitvector_intersections": 5,
                    "patterns_found": 3,
                    "rows_read_from_disk": 7,
                },
                {
                    "fptrees_built": 1,
                    "max_fptree_nodes": 25,
                    "bitvector_intersections": 2,
                    "patterns_found": 4,
                    "rows_read_from_disk": 1,
                },
            ]
        )
        assert isinstance(merged, MiningStats)
        assert merged.fptrees_built == 3
        assert merged.max_fptree_nodes == 25
        assert merged.bitvector_intersections == 7
        assert merged.patterns_found == 7
        assert merged.extra["rows_read_from_disk"] == 8

    def test_empty_merge(self):
        merged = merge_stats([])
        assert merged.as_dict()["patterns_found"] == 0
