"""Recovery suite of the pipelined executor (DESIGN.md §14).

Pins down the executor's failure contract: a broken pool is respawned
and only the *uncommitted suffix* re-runs (the consumer still sees every
task exactly once, in order), the respawn budget degrades to a
deterministic in-process re-run, stragglers are speculatively
re-executed under ``task_timeout_s``, and results recovery abandons are
handed to ``on_discard`` so their resources can be released.
"""

import os
import time

import pytest

from repro.parallel.pipeline import PipelineExecutor
from repro.parallel.pool import process_pools_available
from repro.resilience import FailurePolicy

pool_required = pytest.mark.skipif(
    not process_pools_available(), reason="process pools unavailable here"
)

#: Millisecond backoffs: these tests exercise recovery, not pacing.
FAST = FailurePolicy(
    max_retries=2, backoff_s=0.001, max_backoff_s=0.002, jitter=0.0
)


def crash_worker_once(spec):
    """(value, sentinel_path): kill this worker process on the first sighting.

    The sentinel file is the cross-process "already crashed" flag, so the
    retry of the same task on the respawned pool succeeds.
    """
    value, sentinel = spec
    if value == 4 and not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(1)
    return value * value


def crash_any_worker(spec):
    """(value, parent_pid): always kill worker processes on task 4.

    The parent-pid guard keeps the degraded in-process re-run (which
    executes in the coordinator) from killing the test process itself.
    """
    value, parent_pid = spec
    if value == 4 and os.getpid() != parent_pid:
        os._exit(1)
    return value * value


def straggle_in_workers(spec):
    """(value, parent_pid, delay): only worker processes are slow."""
    value, parent_pid, delay = spec
    if value == 0 and os.getpid() != parent_pid:
        time.sleep(delay)
    return value * value


def slow_first_task(spec):
    value, delay = spec
    time.sleep(delay)
    return value * value


@pool_required
class TestRespawn:
    def test_suffix_retried_each_task_consumed_exactly_once(self, tmp_path):
        sentinel = str(tmp_path / "crashed-once")
        consumed = []
        executor = PipelineExecutor(workers=2, policy=FAST)
        stats = executor.run(
            crash_worker_once,
            [(i, sentinel) for i in range(10)],
            consumed.append,
        )
        assert consumed == [i * i for i in range(10)]
        assert stats.committed == 10
        assert stats.execution_mode == "pipelined-pool"
        counts = executor.events.counts()
        assert counts.get("respawn", 0) >= 1
        assert "degrade" not in counts

    def test_budget_exhaustion_degrades_to_in_process(self):
        consumed = []
        policy = FailurePolicy(
            max_retries=1, backoff_s=0.001, max_backoff_s=0.002, jitter=0.0
        )
        executor = PipelineExecutor(workers=2, policy=policy)
        stats = executor.run(
            crash_any_worker,
            [(i, os.getpid()) for i in range(8)],
            consumed.append,
        )
        # The run still finishes, in order, exactly once per task — the
        # ladder stepped down instead of surfacing the crash.
        assert consumed == [i * i for i in range(8)]
        assert stats.committed == 8
        counts = executor.events.counts()
        assert counts.get("respawn") == 1
        assert counts.get("degrade") == 1


@pool_required
class TestStragglerSpeculation:
    def test_overdue_task_re_executed_inline(self):
        consumed = []
        discarded = []
        policy = FailurePolicy(
            backoff_s=0.001, max_backoff_s=0.002, jitter=0.0, task_timeout_s=0.05
        )
        executor = PipelineExecutor(
            workers=2, policy=policy, on_discard=discarded.append
        )
        stats = executor.run(
            straggle_in_workers,
            [(i, os.getpid(), 0.5) for i in range(4)],
            consumed.append,
        )
        assert consumed == [i * i for i in range(4)]
        assert stats.committed == 4
        assert executor.events.counts().get("timeout", 0) >= 1
        # The worker's slow copy of task 0 eventually completed during
        # shutdown; its superseded result was handed to on_discard.
        assert 0 in discarded

    def test_no_timeout_policy_never_speculates(self):
        consumed = []
        executor = PipelineExecutor(workers=2, policy=FAST)
        executor.run(
            straggle_in_workers,
            [(i, os.getpid(), 0.05) for i in range(4)],
            consumed.append,
        )
        assert consumed == [i * i for i in range(4)]
        assert len(executor.events) == 0


@pool_required
class TestAbortDiscard:
    def test_consumer_failure_releases_uncommitted_ready_results(self):
        discarded = []

        def consumer(result):
            raise ValueError("commit refused")

        executor = PipelineExecutor(
            workers=2, max_inflight=3, policy=FAST, on_discard=discarded.append
        )
        # Task 0 is slow, tasks 1-2 complete and park in the ready buffer;
        # when committing task 0 fails, both parked results must be
        # released through on_discard.
        with pytest.raises(ValueError, match="commit refused"):
            executor.run(
                slow_first_task,
                [(0, 0.3), (1, 0.0), (2, 0.0)],
                consumer,
            )
        assert sorted(discarded) == [1, 4]
