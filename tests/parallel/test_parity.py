"""Parity suite: sharded parallel mining equals sequential mining exactly.

For every algorithm and both storage backends, ``workers=0`` (in-process
shard plan), ``workers=1`` and ``workers=4`` (process pools) must produce
the identical pattern set — on the paper's running example and on a seeded
synthetic graph stream.  This is the determinism guarantee of DESIGN.md §4.
"""

import pytest

from repro.core.export import result_to_json
from repro.core.miner import StreamSubgraphMiner
from repro.datasets.paper_example import paper_example_batches, paper_example_registry
from repro.datasets.random_graphs import GraphStreamGenerator, RandomGraphModel
from repro.parallel import count_supports_parallel, frequent_items_parallel

ALGORITHMS = (
    "fptree_multi",
    "fptree_single",
    "fptree_topdown",
    "vertical",
    "vertical_disk",
    "vertical_direct",
)
WORKER_COUNTS = (0, 1, 4)
BACKENDS = ("memory", "disk")


def synthetic_stream(seed=7, snapshots=90):
    model = RandomGraphModel(num_vertices=10, avg_fanout=3.0, seed=seed)
    registry = model.registry()
    generator = GraphStreamGenerator(model, avg_edges_per_snapshot=4.0, seed=seed + 1)
    return registry, list(generator.snapshots(snapshots))


def build_paper_miner(algorithm, backend, tmp_path):
    registry = paper_example_registry()
    miner = StreamSubgraphMiner(
        window_size=2,
        batch_size=3,
        algorithm=algorithm,
        registry=registry,
        storage=backend if backend != "memory" else None,
        storage_path=tmp_path / "segments" if backend != "memory" else None,
    )
    for batch in paper_example_batches():
        miner.add_batch(batch)
    return miner, 2


def build_synthetic_miner(algorithm, backend, tmp_path):
    registry, snapshots = synthetic_stream()
    miner = StreamSubgraphMiner(
        window_size=3,
        batch_size=15,
        algorithm=algorithm,
        registry=registry,
        storage=backend if backend != "memory" else None,
        storage_path=tmp_path / "segments" if backend != "memory" else None,
    )
    miner.add_snapshots(snapshots)
    return miner, 3


DATASETS = {"paper": build_paper_miner, "synthetic": build_synthetic_miner}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("dataset", sorted(DATASETS))
def test_worker_counts_agree(algorithm, backend, dataset, tmp_path):
    build = DATASETS[dataset]
    rendered = {}
    for workers in WORKER_COUNTS:
        miner, minsup = build(algorithm, backend, tmp_path / f"w{workers}")
        result = miner.mine(minsup=minsup, connected_only=True, workers=workers)
        rendered[workers] = result_to_json(result, miner.registry)
    assert rendered[0] == rendered[1] == rendered[4], (
        f"{algorithm}/{backend}/{dataset}: parallel mining diverged from "
        "the sequential reference"
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_parallel_matches_plain_sequential_mine(backend, tmp_path):
    """workers=N equals the historical workers-free mine() call."""
    miner, minsup = build_paper_miner("vertical_direct", backend, tmp_path / "seq")
    sequential = miner.mine(minsup=minsup, connected_only=True)
    miner2, _ = build_paper_miner("vertical_direct", backend, tmp_path / "par")
    parallel = miner2.mine(minsup=minsup, connected_only=True, workers=4)
    assert result_to_json(sequential, miner.registry) == result_to_json(
        parallel, miner2.registry
    )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_support_counts_match_window_counters(backend, workers, tmp_path):
    miner, _ = build_synthetic_miner("vertical", backend, tmp_path)
    expected = {
        item: count
        for item, count in miner.matrix.item_frequencies().items()
        if count
    }
    counted = count_supports_parallel(miner.matrix, workers=workers)
    assert counted == expected


def test_parallel_frequent_items_match_store(tmp_path):
    miner, minsup = build_synthetic_miner("vertical", "memory", tmp_path)
    assert frequent_items_parallel(miner.matrix, minsup, workers=2) == (
        miner.matrix.frequent_items(minsup)
    )


def test_disk_backend_ships_paths_not_payloads(tmp_path):
    """The segmented disk backend hands workers file paths, not matrices."""
    miner, _ = build_synthetic_miner("vertical", "disk", tmp_path)
    handles = miner.matrix.segment_handles()
    assert handles, "expected a non-empty window"
    assert all(handle.path is not None for handle in handles)
    assert all(handle.payload is None for handle in handles)
    # And the handles reconstruct the exact same rows.
    for handle, segment in zip(handles, miner.matrix.segments()):
        loaded = handle.load()
        assert loaded.segment_id == segment.segment_id
        assert loaded.items() == segment.items()
        assert all(
            loaded.row_bits(item) == segment.row_bits(item)
            for item in segment.items()
        )


def test_memory_backend_ships_payload_handles(tmp_path):
    miner, _ = build_paper_miner("vertical", "memory", tmp_path)
    handles = miner.matrix.segment_handles()
    assert all(handle.payload is not None for handle in handles)
    assert all(handle.path is None for handle in handles)


def test_disk_workers_keep_streaming_rows_from_disk(tmp_path):
    """vertical_disk workers reopen the segmented store: rows come from files."""
    miner, minsup = build_synthetic_miner("vertical_disk", "disk", tmp_path)
    miner.mine(minsup=minsup, connected_only=True, workers=2)
    merged = miner.algorithm.stats.as_dict()
    assert merged.get("rows_read_from_disk", 0) > 0


def test_parallel_rejects_unregistered_algorithm_instance(tmp_path):
    """Only the registry name crosses the process boundary, so a custom
    subclass would silently be swapped for the stock class — reject it."""
    from repro.core.algorithms.vertical import VerticalMiner
    from repro.exceptions import ParallelMiningError
    from repro.parallel import mine_window_parallel

    class CustomVertical(VerticalMiner):
        name = "vertical"

    miner, minsup = build_paper_miner("vertical", "memory", tmp_path)
    with pytest.raises(ParallelMiningError):
        mine_window_parallel(
            miner.matrix, CustomVertical(), minsup, workers=2,
            registry=miner.registry,
        )
    with pytest.raises(ParallelMiningError):
        mine_window_parallel(miner.matrix, "bogus", minsup, workers=2)


def test_shard_capability_matches_algorithm_family():
    """Single-tree algorithms keep the filtering fallback (and run as one
    shard); the vertical family and the multi-tree miner truly split."""
    from repro.core.algorithms import ALGORITHMS
    from repro.core.algorithms.base import MiningAlgorithm

    base = MiningAlgorithm.mine_shard
    assert ALGORITHMS["fptree_single"].mine_shard is base
    assert ALGORITHMS["fptree_topdown"].mine_shard is base
    for name in ("vertical", "vertical_disk", "vertical_direct", "fptree_multi"):
        assert ALGORITHMS[name].mine_shard is not base
